// Observability layer: metrics registry semantics, the sim-time tracer's
// ring buffer, JSON-lines emission, and — the migration contract — that the
// subsystem *Stats accessors and the registry views report identical values.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "milan/engine.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "serialize/codec.hpp"
#include "test_helpers.hpp"

namespace ndsm {
namespace {

using obs::Histogram;
using obs::MetricGroup;
using obs::MetricKind;
using obs::MetricSample;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::Tracer;

const MetricSample* find_sample(const std::vector<MetricSample>& samples,
                                const std::string& name, std::int64_t node = -1) {
  for (const auto& s : samples) {
    if (s.name == name && s.labels.node == node) return &s;
  }
  return nullptr;
}

TEST(Metrics, CounterViewTracksSource) {
  MetricsRegistry reg;
  std::uint64_t hits = 0;
  reg.add_counter("test.hits", {"test", 3}, &hits);
  hits = 41;
  hits++;
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, MetricKind::kCounter);
  EXPECT_EQ(samples[0].name, "test.hits");
  EXPECT_EQ(samples[0].labels.component, "test");
  EXPECT_EQ(samples[0].labels.node, 3);
  EXPECT_DOUBLE_EQ(samples[0].value, 42.0);
}

TEST(Metrics, CounterFnAndGaugeArePullBased) {
  MetricsRegistry reg;
  std::uint64_t pulls = 0;
  reg.add_counter_fn("test.pulls", {}, [&] { return ++pulls; });
  double level = 0.25;
  reg.add_gauge("test.level", {}, [&] { return level; });
  auto samples = reg.snapshot();
  EXPECT_DOUBLE_EQ(find_sample(samples, "test.pulls")->value, 1.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, "test.level")->value, 0.25);
  level = 0.75;
  samples = reg.snapshot();
  EXPECT_DOUBLE_EQ(find_sample(samples, "test.pulls")->value, 2.0);
  EXPECT_DOUBLE_EQ(find_sample(samples, "test.level")->value, 0.75);
}

TEST(Metrics, SnapshotSortedByNameComponentNode) {
  MetricsRegistry reg;
  std::uint64_t v = 0;
  reg.add_counter("b.metric", {"x", 2}, &v);
  reg.add_counter("a.metric", {"x", -1}, &v);
  reg.add_counter("b.metric", {"x", 1}, &v);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.metric");
  EXPECT_EQ(samples[1].labels.node, 1);
  EXPECT_EQ(samples[2].labels.node, 2);
}

TEST(Metrics, GroupUnregistersOnDestruction) {
  MetricsRegistry reg;
  std::uint64_t v = 7;
  {
    MetricGroup group{reg};
    group.set_labels("scoped", 5);
    group.counter("test.scoped", &v);
    group.gauge("test.scoped_gauge", [] { return 1.0; });
    group.histogram("test.scoped_hist", {1.0, 2.0});
    EXPECT_EQ(reg.size(), 3u);
  }
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  Histogram h{{1.0, 5.0, 10.0}};
  h.observe(0.5);   // bucket 0 (<=1)
  h.observe(1.0);   // bucket 0 (inclusive upper edge)
  h.observe(3.0);   // bucket 1
  h.observe(100.0); // +inf bucket
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_DOUBLE_EQ(h.mean(), 104.5 / 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.counts()[0], 0u);
}

TEST(Metrics, JsonlEscapesAndRendersHistograms) {
  MetricsRegistry reg;
  std::uint64_t v = 3;
  reg.add_counter("test.weird", {"comp\"quote\\slash\n", 1}, &v);
  Histogram* h = reg.add_histogram("test.hist", {}, {1.0, 2.0});
  h->observe(1.5);
  std::ostringstream out;
  reg.write_jsonl(out);
  const std::string text = out.str();
  // The component label must arrive escaped, never raw.
  EXPECT_NE(text.find("comp\\\"quote\\\\slash\\n"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"le\":\"inf\""), std::string::npos);
  // One object per line, every line closes its braces.
  std::istringstream lines{text};
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    count++;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
  EXPECT_EQ(count, 2);
}

TEST(Json, EscapeAndNumbers) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::json_escape(std::string_view{"\x01", 1}), "\\u0001");
  EXPECT_EQ(obs::json_number(3.0), "3");
  EXPECT_EQ(obs::json_number(0.0 / 0.0), "null");
  obs::JsonObject o;
  o.field("s", "x\"y").field("n", 2).field("b", true);
  EXPECT_EQ(o.str(), "{\"s\":\"x\\\"y\",\"n\":2,\"b\":true}");
}

TEST(Trace, RingBufferWrapsAndKeepsNewest) {
  Tracer tracer{4};
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.at = i * 1000;
    ev.component = "t";
    ev.name = "e" + std::to_string(i);
    tracer.record(std::move(ev));
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);  // wraparound is detectable
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and only the newest four survive.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Trace, EventsStampVirtualTime) {
  Tracer tracer{16};
  sim::Simulator sim{1};  // binds the global sim clock
  sim.schedule_at(duration::millis(250),
                  [&] { tracer.event("test", "tick", 7, {{"k", "v"}}); });
  sim.run_until(duration::seconds(1));
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at, duration::millis(250));
  EXPECT_EQ(events[0].node, 7);
  EXPECT_FALSE(events[0].is_span());
  ASSERT_EQ(events[0].kv.size(), 1u);
  EXPECT_EQ(events[0].kv[0].first, "k");
}

TEST(Trace, SpanMeasuresElapsedVirtualTime) {
  Tracer tracer{16};
  sim::Simulator sim{1};
  sim.schedule_at(0, [&] {
    auto span = std::make_shared<obs::SpanScope>("test", "work", -1, tracer);
    sim.schedule_at(duration::millis(300), [span] {});  // destroyed at +300ms
  });
  sim.run_until(duration::seconds(1));
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].is_span());
  EXPECT_EQ(events[0].at, 0);
  EXPECT_EQ(events[0].duration, duration::millis(300));
}

TEST(Trace, JsonlRoundTripShape) {
  Tracer tracer{8};
  TraceEvent ev;
  ev.at = 1'500'000;
  ev.duration = 2000;
  ev.component = "milan.engine";
  ev.name = "replan";
  ev.kv = {{"feasible", "true"}};
  tracer.record(std::move(ev));
  std::ostringstream out;
  tracer.write_jsonl(out);
  EXPECT_NE(out.str().find("\"t_us\":1500000"), std::string::npos);
  EXPECT_NE(out.str().find("\"dur_us\":2000"), std::string::npos);
  EXPECT_NE(out.str().find("\"feasible\":\"true\""), std::string::npos);
}

TEST(Trace, LogSinkForwardsRecords) {
  Tracer tracer{8};
  Logger::instance().set_sink(obs::trace_log_sink(tracer));
  Logger::instance().set_level(LogLevel::kInfo);
  NDSM_INFO("obs_test", "hello sink");
  Logger::instance().set_sink({});  // restore stderr default
  Logger::instance().set_level(LogLevel::kWarn);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "log");
  EXPECT_EQ(events[0].component, "obs_test");
}

// Migration contract: the legacy accessors (world.stats(), engine.stats(),
// transport.stats()) and the registry views must agree exactly.
TEST(MetricsMigration, WorldStatsMatchRegistryViews) {
  testing::Lan lan{3};
  lan.transport(0).send(lan.nodes[2], transport::ports::kApp, Bytes(200, 0x1), nullptr);
  lan.sim.run_until(duration::seconds(2));

  const auto& stats = lan.world.stats();
  ASSERT_GT(stats.frames_sent, 0u);
  const auto samples = MetricsRegistry::instance().snapshot();
  const auto* sent = find_sample(samples, "net.world.frames_sent");
  const auto* delivered = find_sample(samples, "net.world.frames_delivered");
  const auto* bytes = find_sample(samples, "net.world.bytes_on_wire");
  ASSERT_NE(sent, nullptr);
  ASSERT_NE(delivered, nullptr);
  ASSERT_NE(bytes, nullptr);
  EXPECT_DOUBLE_EQ(sent->value, static_cast<double>(stats.frames_sent));
  EXPECT_DOUBLE_EQ(delivered->value, static_cast<double>(stats.frames_delivered));
  EXPECT_DOUBLE_EQ(bytes->value, static_cast<double>(stats.bytes_on_wire));

  // Per-node counters agree with the per-node stats accessors.
  const auto node0 = static_cast<std::int64_t>(lan.nodes[0].value());
  const auto* node_sent = find_sample(samples, "net.world.node.frames_sent", node0);
  ASSERT_NE(node_sent, nullptr);
  EXPECT_DOUBLE_EQ(node_sent->value,
                   static_cast<double>(lan.world.stats(lan.nodes[0]).frames_sent));

  // Transport counters ride the same registry.
  const auto& tstats = lan.transport(0).stats();
  bool found_transport = false;
  for (const auto& s : samples) {
    if (s.name == "transport.reliable.messages_sent" &&
        s.value == static_cast<double>(tstats.messages_sent) && tstats.messages_sent > 0) {
      found_transport = true;
    }
  }
  EXPECT_TRUE(found_transport);
}

TEST(MetricsMigration, EngineStatsMatchRegistryViews) {
  testing::Lan lan{3};
  milan::ApplicationSpec app;
  app.variables = {"temperature"};
  app.states["on"] = {{"temperature", 0.8}};
  app.initial_state = "on";
  std::vector<milan::Component> components;
  milan::Component c;
  c.id = ComponentId{1};
  c.node = lan.nodes[1];
  c.qos["temperature"] = 0.9;
  c.sample_period = duration::millis(200);
  components.push_back(c);
  milan::MilanEngine engine{
      lan.world,          lan.nodes[0],
      lan.table,          [&](NodeId n) { return node::router_of(lan.runtimes, n); },
      app,                components};
  engine.start();
  lan.sim.run_until(duration::seconds(3));

  const auto& stats = engine.stats();
  ASSERT_GT(stats.plans, 0u);
  ASSERT_GT(stats.samples_delivered, 0u);
  const auto sink = static_cast<std::int64_t>(lan.nodes[0].value());
  const auto samples = MetricsRegistry::instance().snapshot();
  EXPECT_DOUBLE_EQ(find_sample(samples, "milan.engine.plans", sink)->value,
                   static_cast<double>(stats.plans));
  EXPECT_DOUBLE_EQ(find_sample(samples, "milan.engine.samples_delivered", sink)->value,
                   static_cast<double>(stats.samples_delivered));
  EXPECT_DOUBLE_EQ(find_sample(samples, "milan.engine.feasible", sink)->value, 1.0);
  const auto* benefit = find_sample(samples, "milan.engine.plan_benefit", sink);
  ASSERT_NE(benefit, nullptr);
  EXPECT_GE(benefit->value, 0.8);

  // Replans leave spans on the tracer with sim-time stamps.
  const auto events = Tracer::instance().snapshot();
  const auto replan = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.component == "milan.engine" && e.name == "replan";
  });
  ASSERT_NE(replan, events.end());
  EXPECT_TRUE(replan->is_span());
}

// --- causal tracing -----------------------------------------------------------

TEST(Trace, RingFillCountsDropped) {
  Tracer tracer{4};
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.at = i;
    ev.component = "t";
    ev.name = "e";
    tracer.record(std::move(ev));
  }
  // 10 recorded into a 4-slot ring: exactly 6 were overwritten, no more.
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.size(), 4u);
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);

  // The default instance exports the drop count as obs.tracer.dropped.
  auto& shared = Tracer::instance();
  shared.clear();
  const std::size_t cap = shared.capacity();
  for (std::size_t i = 0; i < cap + 3; ++i) shared.event("t", "fill");
  EXPECT_EQ(shared.dropped(), 3u);
  const auto samples = MetricsRegistry::instance().snapshot();
  const auto* dropped = find_sample(samples, "obs.tracer.dropped");
  const auto* recorded = find_sample(samples, "obs.tracer.recorded");
  ASSERT_NE(dropped, nullptr);
  ASSERT_NE(recorded, nullptr);
  EXPECT_DOUBLE_EQ(dropped->value, 3.0);
  EXPECT_DOUBLE_EQ(recorded->value, static_cast<double>(cap + 3));
  shared.clear();
}

TEST(Metrics, HistogramQuantileInterpolates) {
  // 1..100 into decade buckets: 10 samples per bucket, uniform, so linear
  // interpolation lands exactly on the requested percentile.
  Histogram h{{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}};
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);

  // Overflow bucket clamps to the last finite bound; empty histogram is 0.
  Histogram overflow{{1.0}};
  overflow.observe(50.0);
  EXPECT_DOUBLE_EQ(overflow.quantile(0.5), 1.0);
  Histogram empty{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  // write_table renders the three canonical percentiles per histogram row.
  MetricsRegistry reg;
  Histogram* rh = reg.add_histogram("test.latency", {}, {10, 20, 30});
  rh->observe(15.0);
  std::ostringstream table;
  reg.write_table(table);
  EXPECT_NE(table.str().find("p50="), std::string::npos);
  EXPECT_NE(table.str().find("p95="), std::string::npos);
  EXPECT_NE(table.str().find("p99="), std::string::npos);
}

TEST(Trace, PerfettoExportShape) {
  Tracer tracer{16};
  TraceEvent span;
  span.at = 1000;
  span.duration = 500;
  span.component = "transport.reliable";
  span.name = "message";
  span.node = 3;
  span.trace_id = 42;
  span.span_id = 42;
  span.kv = {{"msg_id", "1"}};
  tracer.record(std::move(span));
  TraceEvent child;
  child.at = 1400;
  child.component = "transport.reliable";
  child.name = "deliver";
  child.node = 7;
  child.trace_id = 42;
  child.span_id = 99;
  child.parent_span = 42;
  tracer.record(std::move(child));
  TraceEvent plain;
  plain.at = 2000;
  plain.duration = 10;
  plain.component = "milan.engine";
  plain.name = "replan";
  tracer.record(std::move(plain));

  std::ostringstream out;
  tracer.write_perfetto(out);
  const std::string text = out.str();
  // Top-level shape Perfetto accepts.
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("]}"), std::string::npos);
  // Process/thread metadata for both nodes.
  EXPECT_NE(text.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"node 3\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"node 7\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"thread_name\""), std::string::npos);
  // The traced span becomes a nestable async pair, the untraced one "X",
  // the instant "i", and the parent link a flow arrow (s at parent, f at
  // child).
  EXPECT_NE(text.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(text.find("\"trace_id\":\"42\""), std::string::npos);
  // Balanced JSON braces — cheap structural sanity without a parser.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
}

TEST(Trace, WireContextLinksCrossNodeSpans) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  testing::Lan lan{3};
  lan.transport(0).send(lan.nodes[2], transport::ports::kApp, Bytes(64, 0x2), nullptr);
  lan.sim.run_until(duration::seconds(2));

  const auto events = tracer.snapshot();
  const auto sender = static_cast<std::int64_t>(lan.nodes[0].value());
  const auto receiver = static_cast<std::int64_t>(lan.nodes[2].value());
  const auto msg = std::find_if(events.begin(), events.end(), [&](const TraceEvent& e) {
    return e.name == "message" && e.node == sender;
  });
  ASSERT_NE(msg, events.end());
  EXPECT_TRUE(msg->is_span());
  // No caller scope: the message roots its own trace (trace id == span id).
  EXPECT_NE(msg->trace_id, 0u);
  EXPECT_EQ(msg->trace_id, msg->span_id);

  // The receiver's deliver event continues the same trace, parented on the
  // sender's wire span — cross-node causality without any shared state.
  const auto del = std::find_if(events.begin(), events.end(), [&](const TraceEvent& e) {
    return e.name == "deliver" && e.node == receiver;
  });
  ASSERT_NE(del, events.end());
  EXPECT_EQ(del->trace_id, msg->trace_id);
  EXPECT_EQ(del->parent_span, msg->span_id);
  EXPECT_NE(del->span_id, msg->span_id);  // delivery draws its own span id
  tracer.clear();
}

TEST(Trace, IdsAreIdenticalAcrossTwinRuns) {
  // The determinism contract for ids themselves: same seed, same workload
  // => byte-identical (name, trace, span, parent) streams.
  auto run = [] {
    auto& tracer = Tracer::instance();
    tracer.clear();
    testing::Lan lan{3};
    lan.transport(0).send(lan.nodes[1], transport::ports::kApp, Bytes(128, 0x5), nullptr);
    lan.transport(2).send(lan.nodes[0], transport::ports::kApp, Bytes(16, 0x6), nullptr);
    lan.sim.run_until(duration::seconds(2));
    std::ostringstream out;
    for (const auto& e : tracer.snapshot()) {
      out << e.name << ':' << e.trace_id << ':' << e.span_id << ':' << e.parent_span << '\n';
    }
    tracer.clear();
    return out.str();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Trace, CrashRestartEpochsShareOneCausalGraph) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  testing::Lan lan{2};
  lan.transport(0).send(lan.nodes[1], transport::ports::kApp, Bytes(32, 0x1), nullptr);
  lan.sim.run_until(duration::seconds(1));

  const auto pre_events = tracer.snapshot();
  const auto pre = std::find_if(pre_events.begin(), pre_events.end(), [](const TraceEvent& e) {
    return e.name == "message";
  });
  ASSERT_NE(pre, pre_events.end());
  const std::uint64_t pre_trace = pre->trace_id;
  const std::uint64_t pre_span = pre->span_id;
  const std::uint64_t pre_epoch = lan.transport(0).trace_ids().epoch();

  lan.sim.schedule_at(duration::seconds(2), [&] { lan.runtime(0).crash(); });
  lan.sim.schedule_at(duration::seconds(3), [&] { lan.runtime(0).restart(); });
  lan.sim.schedule_at(duration::seconds(4), [&] {
    // Continue the pre-crash trace across the restart: the fresh
    // incarnation allocates from a new epoch but joins the same graph.
    const obs::ScopedTrace scope({pre_trace, pre_span, 0});
    lan.transport(0).send(lan.nodes[1], transport::ports::kApp, Bytes(32, 0x2), nullptr);
  });
  lan.sim.run_until(duration::seconds(6));

  EXPECT_GT(lan.transport(0).trace_ids().epoch(), pre_epoch);
  const auto events = tracer.snapshot();
  const auto post = std::find_if(events.begin(), events.end(), [&](const TraceEvent& e) {
    return e.name == "message" && e.span_id != pre_span;
  });
  ASSERT_NE(post, events.end());
  // Same causal graph, new-epoch span ids, explicit parent link across the
  // crash.
  EXPECT_EQ(post->trace_id, pre_trace);
  EXPECT_EQ(post->parent_span, pre_span);
  EXPECT_NE(post->span_id, pre_span);

  // And its delivery on the surviving node is parented on the *new* span.
  const auto del = std::find_if(events.begin(), events.end(), [&](const TraceEvent& e) {
    return e.name == "deliver" && e.parent_span == post->span_id;
  });
  ASSERT_NE(del, events.end());
  EXPECT_EQ(del->trace_id, pre_trace);
  tracer.clear();
}

TEST(Trace, StaleEpochFramesDropAsAnnotatedEvents) {
  auto& tracer = Tracer::instance();
  tracer.clear();
  testing::Lan lan{2};
  // Raise node 1's epoch window for node 0 above zero: deliver one message,
  // crash/restart node 0 (new epoch > 0), deliver another.
  lan.transport(0).send(lan.nodes[1], transport::ports::kApp, Bytes(8, 0x1), nullptr);
  lan.sim.run_until(duration::seconds(1));
  lan.sim.schedule_at(duration::seconds(2), [&] { lan.runtime(0).crash(); });
  lan.sim.schedule_at(duration::seconds(3), [&] { lan.runtime(0).restart(); });
  lan.sim.schedule_at(duration::seconds(4), [&] {
    lan.transport(0).send(lan.nodes[1], transport::ports::kApp, Bytes(8, 0x2), nullptr);
  });
  lan.sim.run_until(duration::seconds(5));
  ASSERT_EQ(lan.transport(1).stats().messages_delivered, 2u);

  // A delayed pre-restart fragment (epoch 0, the seed incarnation's) now
  // arrives: it must drop, and the drop must carry the frame's trace
  // context so the pre-crash trace visibly *ends* instead of vanishing.
  obs::TraceContext ghost;
  ghost.trace_id = 0xDEAD;
  ghost.span_id = 0xBEEF;
  lan.sim.schedule_at(duration::seconds(5) + 1, [&] {
    serialize::Writer w;
    w.u8(1);  // FrameKind::kFragment
    w.varint(0);  // epoch 0: strictly older than the restarted incarnation
    w.varint(77);
    w.u16(transport::ports::kApp);
    w.varint(0);
    w.varint(1);
    w.bytes(Bytes(8, 0x3));
    obs::encode_trace(w, ghost);
    lan.router(0).send(lan.nodes[1], routing::Proto::kTransport, std::move(w).take());
  });
  // An ack echoing a never-seen epoch is equally stale on the sender side.
  lan.sim.schedule_at(duration::seconds(5) + 2, [&] {
    serialize::Writer w;
    w.u8(2);  // FrameKind::kAck
    w.varint(999);
    w.varint(1);
    w.varint(0);
    obs::encode_trace(w, ghost);
    lan.router(0).send(lan.nodes[1], routing::Proto::kTransport, std::move(w).take());
  });
  lan.sim.run_until(duration::seconds(7));

  EXPECT_EQ(lan.transport(1).stats().stale_epoch_dropped, 2u);
  EXPECT_EQ(lan.transport(1).stats().messages_delivered, 2u);  // ghost not delivered
  const auto events = tracer.snapshot();
  const auto drops = std::count_if(events.begin(), events.end(), [&](const TraceEvent& e) {
    return e.name == "stale_epoch_drop" && e.trace_id == ghost.trace_id &&
           e.parent_span == ghost.span_id;
  });
  EXPECT_EQ(drops, 2);
  tracer.clear();
}

TEST(Trace, WireCodecRoundTripsAndToleratesLegacyFrames) {
  obs::TraceContext ctx;
  ctx.trace_id = 0x1122334455667788ULL;
  ctx.span_id = 0x99AABBCCDDEEFF00ULL;
  ctx.hops = 7;
  serialize::Writer w;
  w.u32(41);
  obs::encode_trace(w, ctx);
  const Bytes frame = std::move(w).take();
  serialize::Reader r{frame};
  ASSERT_EQ(r.u32().value(), 41u);
  EXPECT_EQ(obs::decode_trace(r), ctx);

  // Invalid context encodes as a single absent-flag byte.
  serialize::Writer w2;
  obs::encode_trace(w2, obs::TraceContext{});
  const Bytes absent = std::move(w2).take();
  EXPECT_EQ(absent.size(), 1u);
  serialize::Reader r2{absent};
  EXPECT_FALSE(obs::decode_trace(r2).valid());

  // Legacy frame with no trailer at all: exhausted reader, no context.
  serialize::Writer w3;
  w3.u32(41);
  const Bytes legacy = std::move(w3).take();
  serialize::Reader r3{legacy};
  ASSERT_EQ(r3.u32().value(), 41u);
  EXPECT_FALSE(obs::decode_trace(r3).valid());

  // Truncated v1 block: flags promise a context the bytes cannot deliver.
  serialize::Reader r4{Bytes{0x01, 0x02}};
  EXPECT_FALSE(obs::decode_trace(r4).valid());
}

TEST(Trace, IdAllocatorNeverReturnsZeroAndSeparatesEpochs) {
  obs::TraceIdAllocator a{NodeId{5}, 100};
  obs::TraceIdAllocator b{NodeId{5}, 101};  // same node, later incarnation
  obs::TraceIdAllocator c{NodeId{6}, 100};  // different node, same epoch
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto ids = {a.next(), b.next(), c.next()};
    for (const std::uint64_t id : ids) {
      EXPECT_NE(id, 0u);
      EXPECT_TRUE(seen.insert(id).second) << "id collision across allocators";
    }
  }
  // Same (node, epoch) => same deterministic stream.
  obs::TraceIdAllocator a2{NodeId{5}, 100};
  obs::TraceIdAllocator a3{NodeId{5}, 100};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a2.next(), a3.next());
  }
}

TEST(Flight, RecordDumpsRingWithHeader) {
  Tracer tracer{8};
  sim::Simulator sim{1};
  sim.schedule_at(duration::millis(5), [&] {
    tracer.event("test", "before_disaster", 2, {{"k", "v"}});
  });
  sim.run_until(duration::millis(10));
  const std::string path = obs::flight_record("obs-test", "unit test dump", tracer);
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("\"flightrec\""), std::string::npos);
  EXPECT_NE(header.find("unit test dump"), std::string::npos);
  std::string body;
  ASSERT_TRUE(std::getline(in, body));
  EXPECT_NE(body.find("before_disaster"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ndsm
