// Chaos soak: the full middleware stack — centralized discovery with a
// WAL-backed directory, global routing, reliable transport, transactions
// and MiLAN tracking — run for a simulated minute under a composed
// net::FaultPlan schedule (burst loss, duplication, delay jitter,
// partitions, pauses, 21 crash/restarts including the directory node
// crashing with a torn final WAL append). The soak asserts the
// end-to-end invariants the fault layer exists to flush out:
//
//   * at-most-once delivery per receiver incarnation (the dedup floor +
//     sender-epoch machinery; a receiver that crashes loses its dedup
//     state by design, so re-delivery across *its own* restart is the
//     documented amnesia window, not a violation),
//   * exactly-once transaction EndCallbacks, with no transaction leaked,
//   * directory WAL rehydration stays consistent after a crash mid-write
//     (stop-at-tear replay, service keeps answering queries),
//   * twin runs with the same seed are byte-identical, event digest
//     included — faults and all.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "discovery/centralized.hpp"
#include "discovery/directory_server.hpp"
#include "milan/engine.hpp"
#include "net/faults.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"
#include "transactions/manager.hpp"

namespace ndsm {
namespace {

using node::Runtime;
using testing::Lan;

constexpr std::size_t kNodes = 100;
constexpr Time kRunFor = duration::seconds(60);

// Node roles: 0 directory (crashes once, mid-write); 1..4 transaction
// consumers (never crash); 5..6 suppliers (node 5 flaps via pause);
// 10..29 crash/restart victims; 30..34 paused twice; 40..59 and 60..79
// partitioned islands; 90..93 MiLAN sensors; 99 MiLAN sink.

struct ChaosReport {
  std::uint64_t app_deliveries = 0;
  std::uint64_t duplicate_app_deliveries = 0;  // at-most-once violations
  std::vector<int> tx_end_counts;
  std::vector<bool> tx_end_ok;
  std::vector<int> tx_samples;
  std::size_t live_transactions = 0;
  std::uint64_t directory_rehydrated = 0;
  std::uint64_t milan_samples = 0;
  std::uint64_t malformed_dropped = 0;  // hostile/corrupt frames seen (§15)
  net::FaultStats faults;
};

qos::SupplierQos temperature_qos() {
  qos::SupplierQos q;
  q.service_type = "temperature";
  q.reliability = 0.9;
  return q;
}

std::string chaos_run(std::uint64_t seed, ChaosReport* report = nullptr) {
  net::LinkSpec spec = net::ethernet100();
  spec.loss_probability = 0.01;  // baseline loss under the fault channels
  Lan lan{kNodes, seed, spec};
  const NodeId dir_node = lan.nodes[0];

  // --- directory with WAL-backed persistence (rebuilt by restart()) --------
  lan.runtime(0).add_service<discovery::DirectoryServer>("directory", [](Runtime& r) {
    return std::make_unique<discovery::DirectoryServer>(
        r.transport(), duration::seconds(1), &r.storage("directory"));
  });

  // --- suppliers: discovery client + manager live in the service container
  // so a crashed supplier node would rebuild and re-serve on restart.
  for (const std::size_t i : {std::size_t{5}, std::size_t{6}}) {
    lan.runtime(i).add_service<discovery::CentralizedDiscovery>(
        "disco", [dir_node](Runtime& r) {
          return std::make_unique<discovery::CentralizedDiscovery>(
              r.transport(), std::vector<NodeId>{dir_node});
        });
    lan.runtime(i).add_service<transactions::TransactionManager>("txn", [](Runtime& r) {
      auto* disco = r.service<discovery::CentralizedDiscovery>("disco");
      auto mgr = std::make_unique<transactions::TransactionManager>(r.transport(), *disco);
      mgr->serve("temperature", [] { return Bytes(24, 0x21); });
      disco->register_service(temperature_qos(), duration::seconds(20));
      return mgr;
    });
  }
  // Lease renewal keeps the directory journalling all run long, so the
  // scripted directory crash lands amid WAL writes.
  sim::PeriodicTimer renew{lan.sim, duration::seconds(2), [&lan] {
    for (const std::size_t i : {std::size_t{5}, std::size_t{6}}) {
      auto* disco = lan.runtime(i).service<discovery::CentralizedDiscovery>("disco");
      if (disco != nullptr) disco->register_service(temperature_qos(), duration::seconds(20));
    }
  }};
  renew.start();

  // --- consumers on nodes 1..4 (their nodes never crash) -------------------
  std::vector<std::unique_ptr<discovery::CentralizedDiscovery>> consumer_discos;
  std::vector<std::unique_ptr<transactions::TransactionManager>> consumer_mgrs;
  for (std::size_t i = 1; i <= 4; ++i) {
    consumer_discos.push_back(std::make_unique<discovery::CentralizedDiscovery>(
        lan.transport(i), std::vector<NodeId>{dir_node}));
    consumer_mgrs.push_back(std::make_unique<transactions::TransactionManager>(
        lan.transport(i), *consumer_discos.back()));
    // Generous rebind budget: the directory outage plus the flapping
    // supplier must not exhaust supervision before the lifetime fires.
    consumer_mgrs.back()->set_supervision({3, 20, duration::millis(500)});
  }
  std::vector<int> end_counts(consumer_mgrs.size(), 0);
  std::vector<bool> end_ok(consumer_mgrs.size(), false);
  std::vector<int> samples(consumer_mgrs.size(), 0);
  for (std::size_t c = 0; c < consumer_mgrs.size(); ++c) {
    lan.sim.schedule_at(duration::seconds(2) + duration::millis(250) * c, [&, c] {
      transactions::TransactionSpec spec;
      spec.consumer.service_type = "temperature";
      spec.kind = transactions::TransactionKind::kContinuous;
      spec.period = duration::millis(500);
      spec.lifetime = duration::seconds(40);
      consumer_mgrs[c]->begin(
          spec, [&samples, c](const Bytes&, NodeId, Time) { samples[c]++; },
          [&end_counts, &end_ok, c](Status s) {
            end_counts[c]++;
            end_ok[c] = s.is_ok();
          });
    });
  }

  // --- app traffic with (src, seq) tagging for the at-most-once check ------
  // Keys carry the *receiver's* restart count: duplicates within one
  // receiver incarnation are violations; re-delivery across a receiver's
  // own restart is the documented dedup-amnesia window.
  std::vector<std::uint64_t> next_seq(kNodes, 0);
  std::map<std::string, int> delivered;
  auto bind_app = [&lan, &delivered](std::size_t i) {
    lan.transport(i).set_receiver(
        transport::ports::kApp, [&lan, &delivered, i](NodeId, const Bytes& b) {
          delivered[to_string(b) + '@' + std::to_string(i) + '.' +
                    std::to_string(lan.runtime(i).stats().restarts)]++;
        });
  };
  for (std::size_t i = 0; i < kNodes; ++i) bind_app(i);
  sim::PeriodicTimer traffic{lan.sim, duration::millis(500), [&] {
    for (std::size_t i = 0; i < kNodes; ++i) {
      if (!lan.runtime(i).up()) continue;
      const std::string payload =
          std::to_string(i) + ':' + std::to_string(next_seq[i]++);
      lan.transport(i).send(lan.nodes[(i + 37) % kNodes], transport::ports::kApp,
                            to_bytes(payload));
    }
  }};
  traffic.start();

  // --- MiLAN tracking: sink on node 99, hr sensors on 90..93 ---------------
  milan::ApplicationSpec app;
  app.name = "chaos-health";
  app.variables = {"hr"};
  app.states["run"] = milan::Requirements{{"hr", 0.7}};
  app.initial_state = "run";
  std::vector<milan::Component> components;
  for (std::uint64_t s = 0; s < 4; ++s) {
    milan::Component c;
    c.id = ComponentId{s + 1};
    c.node = lan.nodes[90 + s];
    c.name = "hr-" + std::to_string(s);
    c.qos["hr"] = 0.9;
    c.sample_power_w = 0.0005;
    c.sample_period = duration::millis(500);
    components.push_back(c);
  }
  milan::MilanEngine engine{
      lan.world,
      lan.nodes[99],
      lan.table,
      [&lan](NodeId n) { return node::router_of(lan.runtimes, n); },
      app,
      components};
  engine.start();

  // --- the fault schedule --------------------------------------------------
  std::map<NodeId, std::size_t> index_of;
  for (std::size_t i = 0; i < kNodes; ++i) index_of[lan.nodes[i]] = i;
  net::FaultPlan faults{lan.world};
  faults.set_lifecycle_hooks(
      [&](NodeId n) {
        const std::size_t i = index_of[n];
        lan.runtime(i).crash();
        if (i == 0) {
          // The crash tears the directory's in-flight WAL append: replay
          // must stop at the tear and still rehydrate everything before it.
          auto& wal = lan.runtime(0).storage("directory");
          if (wal.size() > 0) wal.corrupt(wal.size() - 1);
        }
      },
      [&](NodeId n) {
        const std::size_t i = index_of[n];
        lan.runtime(i).restart();
        bind_app(i);  // crash dropped the whole stack, handlers included
      });
  // 20 staggered victim crash/restarts plus the directory crash = 21.
  for (std::size_t k = 0; k < 20; ++k) {
    faults.crash(duration::seconds(5) + duration::millis(1700) * k, lan.nodes[10 + k],
                 duration::seconds(3));
  }
  faults.crash(duration::seconds(20) + duration::millis(100), dir_node, duration::seconds(3));
  // Pause cycles: five bystanders twice each, plus the flapping supplier.
  for (std::size_t k = 0; k < 5; ++k) {
    faults.pause(duration::seconds(8) + duration::seconds(2) * k, lan.nodes[30 + k],
                 duration::seconds(4));
    faults.pause(duration::seconds(30) + duration::seconds(2) * k, lan.nodes[30 + k],
                 duration::seconds(4));
  }
  faults.pause(duration::seconds(10), lan.nodes[5], duration::seconds(5));
  faults.pause(duration::seconds(26), lan.nodes[5], duration::seconds(5));
  // Two healing partitions over disjoint bystander blocks.
  std::vector<NodeId> island_a(lan.nodes.begin() + 40, lan.nodes.begin() + 60);
  std::vector<NodeId> island_b(lan.nodes.begin() + 60, lan.nodes.begin() + 80);
  faults.partition(duration::seconds(12), island_a, duration::seconds(8));
  faults.partition(duration::seconds(35), island_b, duration::seconds(6));
  // Stochastic channels. Jitter stays below the 200ms initial RTO.
  net::BurstLossSpec ge;
  ge.p_good_to_bad = 0.002;
  ge.p_bad_to_good = 0.1;
  ge.loss_bad = 0.6;
  faults.burst_loss(lan.medium, ge);
  faults.duplication(0.02, duration::millis(30));
  faults.jitter(0.05, duration::millis(50));

  lan.sim.run_until(kRunFor);

  // --- invariant accounting + determinism dump -----------------------------
  std::uint64_t total = 0;
  std::uint64_t dups = 0;
  for (const auto& [key, count] : delivered) {
    total += static_cast<std::uint64_t>(count);
    if (count > 1) dups += static_cast<std::uint64_t>(count - 1);
  }
  auto* directory = lan.runtime(0).service<discovery::DirectoryServer>("directory");

  if (report != nullptr) {
    report->app_deliveries = total;
    report->duplicate_app_deliveries = dups;
    report->tx_end_counts = end_counts;
    report->tx_end_ok = end_ok;
    report->tx_samples = samples;
    for (const auto& mgr : consumer_mgrs) report->live_transactions += mgr->active_count();
    report->directory_rehydrated = directory->stats().records_rehydrated;
    report->milan_samples = engine.stats().samples_delivered;
    for (std::size_t i = 0; i < kNodes; ++i) {
      report->malformed_dropped += lan.transport(i).stats().malformed_dropped;
    }
    report->faults = faults.stats();
  }

  std::ostringstream dump;
  const auto& ws = lan.world.stats();
  dump << lan.sim.digest() << ':' << lan.sim.now() << ':' << ws.frames_sent << ':'
       << ws.frames_delivered << ':' << ws.frames_lost << ':' << ws.fault_drops << ':'
       << ws.fault_duplicates << ':' << ws.fault_delays;
  const auto& fs = faults.stats();
  dump << '|' << fs.partition_drops << ',' << fs.burst_drops << ',' << fs.duplicates_injected
       << ',' << fs.frames_jittered << ',' << fs.bursts_entered << ',' << fs.crashes << ','
       << fs.restarts << ',' << fs.pauses << ',' << fs.resumes;
  dump << '|' << total << ',' << dups << ',' << engine.stats().samples_delivered << ','
       << directory->stats().records_rehydrated;
  for (const auto& mgr : consumer_mgrs) {
    const auto& ts = mgr->stats();
    dump << '|' << ts.begun << ',' << ts.bound << ',' << ts.rebinds << ',' << ts.ended << ','
         << ts.data_received;
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    const auto& ts = lan.transport(i).stats();
    dump << '|' << ts.messages_sent << ',' << ts.messages_delivered << ','
         << ts.messages_failed << ',' << ts.retransmissions << ',' << ts.duplicates_dropped
         << ',' << ts.stale_epoch_dropped << ',' << ts.malformed_dropped;
  }
  return dump.str();
}

TEST(Chaos, SoakHoldsInvariantsUnderComposedFaults) {
  ChaosReport report;
  const std::string dump = chaos_run(2024, &report);
  ASSERT_FALSE(dump.empty());

  // Every fault type actually engaged.
  EXPECT_EQ(report.faults.crashes, 21u);
  EXPECT_EQ(report.faults.restarts, 21u);
  EXPECT_EQ(report.faults.pauses, 12u);
  EXPECT_EQ(report.faults.resumes, 12u);
  EXPECT_EQ(report.faults.partitions_started, 2u);
  EXPECT_EQ(report.faults.partitions_healed, 2u);
  EXPECT_GT(report.faults.partition_drops, 0u);
  EXPECT_GT(report.faults.burst_drops, 0u);
  EXPECT_GT(report.faults.duplicates_injected, 0u);
  EXPECT_GT(report.faults.frames_jittered, 0u);

  // At-most-once: no payload reached any receiver incarnation twice.
  EXPECT_EQ(report.duplicate_app_deliveries, 0u);
  EXPECT_GT(report.app_deliveries, 5000u);  // traffic genuinely flowed

  // Exactly-once transaction endings, nothing leaked.
  ASSERT_EQ(report.tx_end_counts.size(), 4u);
  for (std::size_t c = 0; c < report.tx_end_counts.size(); ++c) {
    EXPECT_EQ(report.tx_end_counts[c], 1) << "consumer " << c;
    EXPECT_TRUE(report.tx_end_ok[c]) << "consumer " << c;
    EXPECT_GT(report.tx_samples[c], 0) << "consumer " << c;
  }
  EXPECT_EQ(report.live_transactions, 0u);

  // Fault injection corrupts delivery, never frame contents: across the
  // whole soak no transport may ever have classified a frame as malformed
  // (a nonzero count here means the stack itself emits bad bytes).
  EXPECT_EQ(report.malformed_dropped, 0u);

  // The directory came back from its torn WAL with real records.
  EXPECT_GE(report.directory_rehydrated, 1u);
  // MiLAN kept tracking through the whole schedule.
  EXPECT_GT(report.milan_samples, 0u);

  // Flight recorder: a failed soak leaves the last trace window on disk,
  // so the post-mortem starts from evidence instead of a rerun.
  if (HasFailure()) {
    obs::flight_record("chaos-soak", "Chaos.SoakHoldsInvariantsUnderComposedFaults failed");
  }
}

TEST(Chaos, TwinRunsAreByteIdentical) {
  const std::string first = chaos_run(777);
  const std::string second = chaos_run(777);
  EXPECT_EQ(first, second);
  const std::string different = chaos_run(778);
  EXPECT_NE(first, different);
}

// The tracing hard bar: recording spans must be pure observation. The
// full 100-node soak with tracing on and with tracing off must agree on
// the event digest (and every counter in the dump) byte for byte —
// trace-context bytes ride every frame unconditionally and id allocators
// advance unconditionally, so the only difference is ring writes.
TEST(Chaos, TracingOnAndOffRunsAreDigestIdentical) {
  auto& tracer = obs::Tracer::instance();
  tracer.clear();
  tracer.set_enabled(true);
  const std::string traced = chaos_run(4242);
  EXPECT_GT(tracer.recorded(), 0u);  // tracing was genuinely observing
  tracer.clear();
  tracer.set_enabled(false);
  const std::string untraced = chaos_run(4242);
  EXPECT_EQ(tracer.recorded(), 0u);  // and genuinely off
  tracer.set_enabled(true);
  EXPECT_EQ(traced, untraced);
}

}  // namespace
}  // namespace ndsm
