// Integration tests: several middleware layers working together in one
// simulated deployment, end to end.

#include <gtest/gtest.h>

#include "discovery/centralized.hpp"
#include "discovery/directory_server.hpp"
#include "discovery/distributed.hpp"
#include "milan/engine.hpp"
#include "recovery/store.hpp"
#include "routing/distance_vector.hpp"
#include "test_helpers.hpp"
#include "transactions/manager.hpp"
#include "transactions/pubsub.hpp"
#include "interop/markup.hpp"
#include "transactions/rpc.hpp"

namespace ndsm {
namespace {

using serialize::Value;
using testing::Lan;
using testing::WirelessGrid;

// Full consumer pipeline: discovery -> QoS matching -> continuous
// transaction -> supplier death -> rebind -> recovery journal intact.
TEST(Integration, SenseBindFailRecover) {
  WirelessGrid grid{9, 20.0, 42, 1e9, 0.02};
  grid.with_routers<routing::FloodingRouter>();

  std::vector<std::unique_ptr<discovery::DistributedDiscovery>> discos;
  std::vector<std::unique_ptr<transactions::TransactionManager>> managers;
  for (std::size_t i = 0; i < 9; ++i) {
    discos.push_back(std::make_unique<discovery::DistributedDiscovery>(grid.transport(i)));
    managers.push_back(
        std::make_unique<transactions::TransactionManager>(grid.transport(i), *discos[i]));
  }

  qos::SupplierQos probe;
  probe.service_type = "temperature";
  probe.reliability = 0.95;
  for (const std::size_t supplier : {4u, 8u}) {
    managers[supplier]->serve("temperature", [] { return to_bytes("21"); });
    discos[supplier]->register_service(probe, duration::seconds(60));
  }

  recovery::StableStorage log;
  recovery::StableStorage ckpt;
  recovery::RecoverableStore journal{log, ckpt};

  std::int64_t samples = 0;
  transactions::TransactionSpec spec;
  spec.consumer.service_type = "temperature";
  spec.consumer.min_reliability = 0.9;
  spec.kind = transactions::TransactionKind::kContinuous;
  spec.period = duration::millis(500);
  const TransactionId tx = managers[0]->begin(spec, [&](const Bytes&, NodeId, Time) {
    samples++;
    journal.put("samples", Value{samples});
  });

  grid.sim.run_until(duration::seconds(5));
  EXPECT_GT(samples, 4);
  const NodeId first_supplier = managers[0]->supplier_of(tx);
  ASSERT_TRUE(first_supplier.valid());

  // Supplier dies; the transaction must re-bind to the other probe.
  grid.world.kill(first_supplier);
  grid.sim.run_until(duration::seconds(25));
  const NodeId second_supplier = managers[0]->supplier_of(tx);
  ASSERT_TRUE(second_supplier.valid());
  EXPECT_NE(second_supplier, first_supplier);
  EXPECT_GE(managers[0]->stats().rebinds, 1u);

  const std::int64_t before_crash = samples;
  EXPECT_GT(before_crash, 8);

  // The consumer node's process crashes; the journal recovers the count.
  journal.crash();
  const auto report = journal.recover();
  ASSERT_TRUE(journal.get("samples").has_value());
  EXPECT_EQ(journal.get("samples")->as_int(), before_crash);
  EXPECT_GT(report.log_records_replayed, 0u);
}

// MiLAN + routing + energy: a sensor field where MiLAN's plan actually
// drives radio traffic, batteries drain, a node dies, MiLAN replans and
// the sink keeps receiving samples.
TEST(Integration, MilanOverLiveNetworkSurvivesDeath) {
  // ~0.1 J per node: one active sensor (sampling + radio) lives ~2 min, so
  // a 6-minute run forces several battery-driven rotations and deaths while
  // leaving enough redundancy to stay feasible.
  WirelessGrid grid{9, 20.0, 42, /*battery=*/0.1};
  auto table = std::make_shared<routing::GlobalRoutingTable>(grid.world,
                                                             routing::Metric::kEnergyAware);
  grid.with_routers<routing::GlobalRouter>(table);
  grid.world.set_battery(grid.nodes[0], net::Battery::mains());

  std::vector<milan::Component> sensors;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    milan::Component c;
    c.id = ComponentId{i};
    c.node = grid.nodes[i * 2];  // nodes 2,4,6,8
    c.qos["temperature"] = 0.9;
    c.sample_power_w = 0.0005;
    c.sample_bytes = 24;
    c.sample_period = duration::millis(250);
    sensors.push_back(std::move(c));
  }
  milan::ApplicationSpec app;
  app.variables = {"temperature"};
  app.states["on"] = {{"temperature", 0.85}};
  app.initial_state = "on";

  milan::EngineConfig cfg;
  cfg.strategy = milan::Strategy::kOptimal;
  cfg.replan_interval = duration::seconds(10);
  milan::MilanEngine engine{grid.world,
                            grid.nodes[0],
                            table,
                            [&](NodeId n) { return node::router_of(grid.runtimes, n); },
                            app,
                            sensors,
                            cfg};
  engine.start();
  ASSERT_TRUE(engine.current_plan().feasible);
  EXPECT_EQ(engine.current_plan().active.size(), 1u);  // one 0.9 sensor suffices

  // Run long enough to drain the first chosen sensor's host battery (the
  // engine rotates to others on periodic replans).
  grid.sim.run_until(duration::minutes(6));
  EXPECT_GT(engine.stats().samples_delivered, 800u);
  EXPECT_GT(engine.stats().plans, 2u);
  // At least one host died from sampling drain and the app survived it.
  std::size_t dead = 0;
  for (const NodeId n : grid.nodes) {
    if (!grid.world.alive(n)) dead++;
  }
  if (dead > 0) {
    EXPECT_TRUE(engine.current_plan().feasible);
    EXPECT_GE(engine.stats().replans_on_death, 1u);
  }
}

// Discovery + RPC + pub-sub sharing one deployment; middleware services do
// not interfere across ports.
TEST(Integration, CoexistingServicesOneDeployment) {
  Lan lan{5};
  discovery::DirectoryServer directory{lan.transport(0)};
  transactions::PubSubBroker broker{lan.transport(0)};
  discovery::CentralizedDiscovery supplier_disco{lan.transport(1), {lan.nodes[0]}};
  discovery::CentralizedDiscovery consumer_disco{lan.transport(2), {lan.nodes[0]}};
  transactions::RpcEndpoint server{lan.transport(1)};
  transactions::RpcEndpoint client{lan.transport(2)};
  transactions::PubSubClient pub{lan.transport(3), lan.nodes[0]};
  transactions::PubSubClient sub{lan.transport(4), lan.nodes[0]};

  server.register_method("status", [](NodeId, const Bytes&) -> Result<Bytes> {
    return to_bytes("ok");
  });
  qos::SupplierQos s;
  s.service_type = "gateway";
  supplier_disco.register_service(s, duration::seconds(60));

  int pubsub_got = 0;
  sub.subscribe("alerts/*", [&](const std::string&, const Bytes&, NodeId) { pubsub_got++; });

  std::string rpc_reply;
  lan.sim.schedule_at(duration::millis(500), [&] {
    qos::ConsumerQos want;
    want.service_type = "gateway";
    consumer_disco.query(
        want,
        [&](std::vector<discovery::ServiceRecord> records) {
          ASSERT_FALSE(records.empty());
          client.call(records[0].provider, "status", {}, [&](Result<Bytes> r) {
            if (r.is_ok()) rpc_reply = to_string(r.value());
          });
        },
        4, duration::seconds(2));
    for (int i = 0; i < 10; ++i) pub.publish("alerts/temp", to_bytes("hot"));
  });

  lan.sim.run_until(duration::seconds(5));
  EXPECT_EQ(rpc_reply, "ok");
  EXPECT_EQ(pubsub_got, 10);
  EXPECT_EQ(directory.stats().queries, 1u);
}

// Distance-vector routing under churn with live transactions: nodes die
// and revive; reliable transport + DV re-convergence keep data flowing.
TEST(Integration, TransactionsSurviveRoutingChurn) {
  WirelessGrid grid{16, 20.0, 11, 1e9, 0.05};
  grid.with_routers<routing::DistanceVectorRouter>(duration::seconds(1));
  grid.sim.run_until(duration::seconds(8));  // converge

  int delivered = 0;
  grid.transport(15).set_receiver(transport::ports::kApp,
                                  [&](NodeId, const Bytes&) { delivered++; });
  // Stream messages corner to corner while interior nodes blink.
  for (int i = 0; i < 40; ++i) {
    grid.sim.schedule_at(duration::seconds(8) + i * duration::millis(500), [&] {
      grid.transport(0).send(grid.nodes[15], transport::ports::kApp, Bytes(64, 1));
    });
  }
  grid.sim.schedule_at(duration::seconds(12), [&] { grid.world.kill(grid.nodes[5]); });
  grid.sim.schedule_at(duration::seconds(18), [&] { grid.world.revive(grid.nodes[5]); });
  grid.sim.schedule_at(duration::seconds(20), [&] { grid.world.kill(grid.nodes[10]); });

  grid.sim.run_until(duration::seconds(60));
  // The grid stays connected throughout (only interior nodes blink); the
  // reliable transport must land the large majority despite churn.
  EXPECT_GE(delivered, 35);
}

// §3.2: "Middleware often serves as a bridge among multiple network
// technologies". A wired office LAN and a wireless sensor patch joined by
// one dual-homed gateway node: discovery and RPC flow across the
// technology boundary with no application awareness of it.
TEST(Integration, CrossTechnologyBridging) {
  sim::Simulator sim{13};
  net::World world{sim};
  const MediumId lan = world.add_medium(net::ethernet100());
  const MediumId radio = world.add_medium(net::wifi80211(40, 0.01));

  // Wired: directory (0) + office client (1) + gateway (2).
  // Wireless: gateway (2) + two sensor nodes (3, 4).
  std::vector<NodeId> nodes;
  node::StackConfig cfg;
  cfg.table = std::make_shared<routing::GlobalRoutingTable>(world, routing::Metric::kHopCount);
  std::vector<std::unique_ptr<node::Runtime>> runtimes;
  auto add = [&](Vec2 at) {
    const NodeId id = world.add_node(at);
    nodes.push_back(id);
    runtimes.push_back(std::make_unique<node::Runtime>(world, id, cfg));
    return id;
  };
  add({0, 0});
  add({10, 0});
  add({20, 0});
  add({40, 0});
  add({50, 20});
  world.attach(nodes[0], lan);
  world.attach(nodes[1], lan);
  world.attach(nodes[2], lan);
  world.attach(nodes[2], radio);  // dual-homed gateway
  world.attach(nodes[3], radio);
  world.attach(nodes[4], radio);

  discovery::DirectoryServer directory{runtimes[0]->transport()};
  discovery::CentralizedDiscovery sensor_disco{runtimes[3]->transport(), {nodes[0]}};
  discovery::CentralizedDiscovery office_disco{runtimes[1]->transport(), {nodes[0]}};
  transactions::RpcEndpoint sensor_rpc{runtimes[3]->transport()};
  transactions::RpcEndpoint office_rpc{runtimes[1]->transport()};

  // A sensor on the wireless side registers across the bridge.
  qos::SupplierQos s;
  s.service_type = "soil-moisture";
  sensor_disco.register_service(s, duration::seconds(60));
  sensor_rpc.register_method("read", [](NodeId, const Bytes&) -> Result<Bytes> {
    return to_bytes("42%");
  });

  // The office client on the wired side finds and calls it.
  std::string reading;
  sim.schedule_at(duration::millis(500), [&] {
    qos::ConsumerQos want;
    want.service_type = "soil-moisture";
    office_disco.query(
        want,
        [&](std::vector<discovery::ServiceRecord> records) {
          ASSERT_EQ(records.size(), 1u);
          EXPECT_EQ(records[0].provider, nodes[3]);
          office_rpc.call(records[0].provider, "read", {}, [&](Result<Bytes> r) {
            if (r.is_ok()) reading = to_string(r.value());
          });
        },
        4, duration::seconds(2));
  });
  sim.run_until(duration::seconds(5));
  EXPECT_EQ(reading, "42%");
  // The path really crossed the gateway: it forwarded data both ways.
  EXPECT_GT(runtimes[2]->router().stats().data_forwarded, 0u);
}

// §3.3/§3.9: a service described in markup text (the XML-style interface
// abstraction) registers and is discovered through the normal QoS path.
TEST(Integration, MarkupDescribedServiceEndToEnd) {
  Lan lan{3};
  discovery::DirectoryServer directory{lan.transport(0)};
  discovery::CentralizedDiscovery supplier{lan.transport(1), {lan.nodes[0]}};
  discovery::CentralizedDiscovery consumer{lan.transport(2), {lan.nodes[0]}};

  const std::string description = R"(
    <service type="camera">
      <qos reliability="0.97" availability="0.99" power-w="4.5"/>
      <position x="12" y="8"/>
      <attributes>
        <attribute name="resolution" type="int">1080</attribute>
        <attribute name="codec" type="string">mjpeg</attribute>
      </attributes>
    </service>)";
  const auto tree = interop::parse_markup(description);
  ASSERT_TRUE(tree.is_ok()) << tree.status().to_string();
  auto parsed = qos::SupplierQos::from_markup(tree.value());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  supplier.register_service(std::move(parsed).take(), duration::seconds(60));

  std::vector<discovery::ServiceRecord> found;
  lan.sim.schedule_at(duration::millis(500), [&] {
    qos::ConsumerQos want;
    want.service_type = "camera";
    want.requirements.push_back(
        {"resolution", qos::CmpOp::kGe, serialize::Value{720}, 1.0, true});
    want.min_reliability = 0.95;
    consumer.query(want, [&](std::vector<discovery::ServiceRecord> r) { found = r; }, 4,
                   duration::seconds(2));
  });
  lan.sim.run_until(duration::seconds(3));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].qos.attributes.at("codec"), serialize::Value{"mjpeg"});
  ASSERT_TRUE(found[0].qos.position.has_value());
  EXPECT_EQ(found[0].qos.position->x, 12);
}

}  // namespace
}  // namespace ndsm
