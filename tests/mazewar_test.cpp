// apps::mazewar tests. Three layers:
//   Mazewar       unit behavior against hand-crafted frames on a sim World
//                 (exactly-once scoring, stale-state rejection, leave,
//                 peer expiry, malformed drops, maze geometry);
//   MazewarChaos  the flagship soak — 100 players on one segment under
//                 composed faults (burst loss, duplication, jitter,
//                 partitions, pauses), holding the score invariants at
//                 quiesce, twin-run digest-identical (CI's chaos-soak job
//                 picks the suite up via `ctest -R Chaos`);
//   MazewarUdp    the same Player unmodified over real loopback sockets.

#include "apps/mazewar/mazewar.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "net/faults.hpp"
#include "net/link_spec.hpp"
#include "net/udp_stack.hpp"
#include "net/world.hpp"
#include "net/world_stack.hpp"
#include "serialize/codec.hpp"
#include "sim/simulator.hpp"

namespace ndsm::apps::mazewar {
namespace {

// Wire kinds on Proto::kMazewar (mirrors the encoder's private enum; the
// tests below forge frames to probe the receive paths).
constexpr std::uint8_t kKindJoin = 1;
constexpr std::uint8_t kKindState = 2;
constexpr std::uint8_t kKindLeave = 3;
constexpr std::uint8_t kKindHit = 4;
constexpr std::uint8_t kKindHitAck = 5;

Bytes state_frame(std::uint8_t kind, std::int32_t x, std::int32_t y, std::uint64_t seq,
                  std::int64_t score = 0) {
  serialize::Writer w;
  w.u8(kind);
  w.svarint(x);
  w.svarint(y);
  w.u8(0);  // dir
  w.svarint(score);
  w.varint(seq);
  w.boolean(false);  // missile_live
  w.svarint(0);
  w.svarint(0);
  w.u8(0);  // missile_dir
  return std::move(w).take();
}

Bytes claim_frame(std::uint8_t kind, std::uint64_t hit_id) {
  serialize::Writer w;
  w.u8(kind);
  w.varint(hit_id);
  return std::move(w).take();
}

// One player plus a bare "attacker" stack that forges raw kMazewar frames.
struct Harness {
  sim::Simulator sim{42};
  net::World world{sim};
  MediumId medium = world.add_medium(net::ethernet100());
  NodeId player_id, attacker_id;
  std::unique_ptr<net::WorldStack> player_stack, attacker_stack;
  std::unique_ptr<Player> player;
  std::vector<Bytes> attacker_got;  // payloads the player sent back to us

  explicit Harness(MazeConfig cfg = {}) {
    player_id = world.add_node(Vec2{0.0, 0.0});
    world.attach(player_id, medium);
    attacker_id = world.add_node(Vec2{5.0, 0.0});
    world.attach(attacker_id, medium);
    player_stack = std::make_unique<net::WorldStack>(world, player_id);
    attacker_stack = std::make_unique<net::WorldStack>(world, attacker_id);
    attacker_stack->set_frame_handler(net::Proto::kMazewar, [this](const net::LinkFrame& f) {
      attacker_got.push_back(Bytes{f.payload().begin(), f.payload().end()});
    });
    player = std::make_unique<Player>(*player_stack, cfg);
  }

  void send(Bytes frame) {
    ASSERT_TRUE(
        attacker_stack->send_frame(player_id, net::Proto::kMazewar, std::move(frame)).is_ok());
  }
  void run(Time d) { sim.run_until(sim.now() + d); }
};

TEST(Mazewar, PillarMazeGeometry) {
  const MazeConfig cfg;
  // Solid border.
  EXPECT_TRUE(is_wall(cfg, 0, 5));
  EXPECT_TRUE(is_wall(cfg, 5, 0));
  EXPECT_TRUE(is_wall(cfg, cfg.width - 1, 5));
  EXPECT_TRUE(is_wall(cfg, 5, cfg.height - 1));
  // Pillars at odd-odd, corridors everywhere else.
  EXPECT_TRUE(is_wall(cfg, 3, 5));
  EXPECT_FALSE(is_wall(cfg, 2, 5));
  EXPECT_FALSE(is_wall(cfg, 3, 4));
  // Spawn always lands on an open cell.
  Harness h;
  EXPECT_FALSE(is_wall(cfg, h.player->self_state().x, h.player->self_state().y));
}

TEST(Mazewar, ManualControlsRespectWalls) {
  MazeConfig cfg;
  cfg.autopilot = false;
  Harness h{cfg};
  Player& p = *h.player;
  // Walk west until the border refuses; position must stay in-maze.
  p.turn(Dir::kWest);
  int steps = 0;
  while (p.step_forward()) steps++;
  EXPECT_LT(steps, cfg.width);
  EXPECT_FALSE(is_wall(cfg, p.self_state().x, p.self_state().y));
  EXPECT_FALSE(p.step_forward());  // still blocked
  // One missile in flight at a time.
  EXPECT_TRUE(p.fire());
  EXPECT_FALSE(p.fire());
  EXPECT_EQ(p.stats().shots_fired, 1u);
  // The missile flies west from the border wall: dead within a few ticks,
  // after which firing is possible again.
  h.run(duration::seconds(1));
  EXPECT_TRUE(p.fire());
}

TEST(Mazewar, DuplicateHitClaimsApplyExactlyOnce) {
  MazeConfig cfg;
  cfg.autopilot = false;  // hold still; no return fire
  Harness h{cfg};
  h.run(duration::millis(300));

  // The same claim id delivered three times: one score penalty, three acks
  // (re-acks cover a lost ack without re-applying the hit).
  for (int i = 0; i < 3; ++i) h.send(claim_frame(kKindHit, 77));
  h.run(duration::millis(300));
  EXPECT_EQ(h.player->stats().hits_suffered, 1u);
  EXPECT_EQ(h.player->stats().duplicate_claims, 2u);
  EXPECT_EQ(h.player->self_state().score, -kHitPenalty);

  int acks = 0;
  for (const Bytes& payload : h.attacker_got) {
    serialize::Reader r{payload};
    if (r.u8().value_or(0) == kKindHitAck) acks++;
  }
  EXPECT_EQ(acks, 3);

  // A distinct claim id applies again.
  h.send(claim_frame(kKindHit, 78));
  h.run(duration::millis(300));
  EXPECT_EQ(h.player->stats().hits_suffered, 2u);
  EXPECT_EQ(h.player->self_state().score, -2 * kHitPenalty);
}

TEST(Mazewar, StaleStateNeverRollsAPeerBackwards) {
  MazeConfig cfg;
  cfg.autopilot = false;
  Harness h{cfg};
  h.send(state_frame(kKindJoin, 2, 2, /*seq=*/100));
  h.run(duration::millis(50));
  ASSERT_EQ(h.player->peers().size(), 1u);
  EXPECT_EQ(h.player->stats().joins_seen, 1u);
  EXPECT_EQ(h.player->peers().at(h.attacker_id).state.seq, 100u);

  // A delayed older packet must refresh liveness but not the view.
  h.send(state_frame(kKindState, 9, 9, /*seq=*/5));
  h.run(duration::millis(50));
  EXPECT_EQ(h.player->stats().stale_states_dropped, 1u);
  EXPECT_EQ(h.player->peers().at(h.attacker_id).state.x, 2);
  EXPECT_EQ(h.player->peers().at(h.attacker_id).state.seq, 100u);

  // Newer state advances it.
  h.send(state_frame(kKindState, 4, 2, /*seq=*/101));
  h.run(duration::millis(50));
  EXPECT_EQ(h.player->peers().at(h.attacker_id).state.x, 4);
}

TEST(Mazewar, LeaveDropsPeerAndAbandonsClaimsAgainstIt) {
  MazeConfig cfg;
  cfg.autopilot = false;
  Harness h{cfg};
  // Park the "attacker rat" in the player's line of fire: pick whichever
  // neighbouring cell is open (every open cell has at least one).
  h.run(duration::millis(150));
  const RatState& self = h.player->self_state();
  std::int32_t tx = self.x, ty = self.y;
  for (const Dir d : {Dir::kEast, Dir::kWest, Dir::kSouth, Dir::kNorth}) {
    const std::int32_t nx = self.x + (d == Dir::kEast ? 1 : d == Dir::kWest ? -1 : 0);
    const std::int32_t ny = self.y + (d == Dir::kSouth ? 1 : d == Dir::kNorth ? -1 : 0);
    if (!is_wall(cfg, nx, ny)) {
      h.player->turn(d);
      tx = nx;
      ty = ny;
      break;
    }
  }
  ASSERT_NE(std::make_pair(tx, ty), std::make_pair(self.x, self.y));
  h.send(state_frame(kKindJoin, tx, ty, 1));
  h.run(duration::millis(150));
  ASSERT_EQ(h.player->peers().size(), 1u);

  // Fire: the missile enters the peer's cell next tick and a claim goes
  // out; the target never acks (no Player behind it), so it stays pending.
  ASSERT_TRUE(h.player->fire());
  h.run(duration::millis(500));
  ASSERT_EQ(h.player->pending_claims(), 1u);
  const std::uint64_t claims_before = h.player->stats().hit_claims_sent;
  h.run(duration::millis(500));
  EXPECT_GT(h.player->stats().hit_claims_sent, claims_before);  // retransmitting

  // Leave: peer gone, claim abandoned, no score ever granted.
  serialize::Writer w;
  w.u8(kKindLeave);
  h.send(std::move(w).take());
  h.run(duration::millis(300));
  EXPECT_EQ(h.player->peers().size(), 0u);
  EXPECT_EQ(h.player->stats().leaves_seen, 1u);
  EXPECT_EQ(h.player->pending_claims(), 0u);
  EXPECT_EQ(h.player->stats().hits_confirmed, 0u);
  EXPECT_EQ(h.player->self_state().score, 0);
}

TEST(Mazewar, SilentPeerExpiresAfterTimeout) {
  MazeConfig cfg;
  cfg.autopilot = false;
  cfg.peer_timeout = duration::millis(800);
  Harness h{cfg};
  h.send(state_frame(kKindJoin, 2, 2, 1));
  h.run(duration::millis(100));
  ASSERT_EQ(h.player->peers().size(), 1u);
  h.run(duration::seconds(2));  // silence
  EXPECT_EQ(h.player->peers().size(), 0u);
  EXPECT_EQ(h.player->stats().peers_expired, 1u);
  EXPECT_GT(h.player->staleness().count(), 0u);
}

TEST(Mazewar, MalformedFramesCountedAndIgnored) {
  MazeConfig cfg;
  cfg.autopilot = false;
  Harness h{cfg};
  h.send(Bytes{});                               // empty
  h.send(Bytes{kKindState});                     // truncated state
  h.send(Bytes{kKindHit});                       // claim with no id
  h.send(Bytes{99});                             // unknown kind
  h.send(state_frame(kKindState, 2, 2, 1, 0));   // valid, as control
  {
    Bytes bad_dir = state_frame(kKindJoin, 2, 2, 1);
    // dir byte sits after the two svarint coords (one byte each here).
    bad_dir[3] = 7;  // dir > 3
    h.send(bad_dir);
  }
  h.run(duration::millis(200));
  EXPECT_EQ(h.player->stats().malformed_dropped, 5u);
  EXPECT_EQ(h.player->peers().size(), 1u);  // the valid one got in
}

TEST(Mazewar, ScoreEquationHoldsDuringLiveGame) {
  // A real 4-player autopilot game; the per-node invariant must hold at
  // every sampled instant, not only at quiesce.
  sim::Simulator sim(7);
  net::World world(sim);
  const MediumId medium = world.add_medium(net::ethernet100());
  std::vector<std::unique_ptr<net::WorldStack>> stacks;
  std::vector<std::unique_ptr<Player>> players;
  for (int i = 0; i < 4; ++i) {
    const NodeId id = world.add_node(Vec2{static_cast<double>(i), 0.0});
    world.attach(id, medium);
    stacks.push_back(std::make_unique<net::WorldStack>(world, id));
    players.push_back(std::make_unique<Player>(*stacks.back()));
  }
  for (int slice = 0; slice < 20; ++slice) {
    sim.run_until(sim.now() + duration::millis(500));
    for (const auto& p : players) {
      EXPECT_EQ(p->self_state().score,
                kHitReward * static_cast<std::int64_t>(p->stats().hits_confirmed) -
                    kHitPenalty * static_cast<std::int64_t>(p->stats().hits_suffered));
    }
  }
  // 4 rats in a 15x15 maze for 10s: somebody got shot.
  std::uint64_t total = 0;
  for (const auto& p : players) total += p->stats().hits_confirmed;
  EXPECT_GT(total, 0u);
}

// ---------------------------------------------------------------------------
// Chaos soak: the flagship acceptance run.

struct SoakReport {
  std::uint64_t confirmed = 0;
  std::uint64_t suffered = 0;
  std::uint64_t states = 0;
};

// One full soak under a composed fault plan; returns the digest dump that
// must be byte-identical across twin runs with the same seed.
std::string mazewar_chaos_run(std::uint64_t seed, SoakReport* report = nullptr) {
  constexpr std::size_t kPlayers = 100;
  sim::Simulator sim(seed);
  net::World world(sim);
  const MediumId medium = world.add_medium(net::ethernet100());

  MazeConfig cfg;
  cfg.width = 31;  // room for 100 rats
  cfg.height = 31;
  cfg.state_period = duration::millis(250);

  std::vector<NodeId> ids;
  std::vector<std::unique_ptr<net::WorldStack>> stacks;
  std::vector<std::unique_ptr<Player>> players;
  for (std::size_t i = 0; i < kPlayers; ++i) {
    const NodeId id = world.add_node(Vec2{static_cast<double>(i % 10) * 3.0,
                                          static_cast<double>(i / 10) * 3.0});
    world.attach(id, medium);
    ids.push_back(id);
    stacks.push_back(std::make_unique<net::WorldStack>(world, id));
    players.push_back(std::make_unique<Player>(*stacks.back(), cfg));
  }

  net::FaultPlan faults{world, seed ^ 0xfa157};
  faults.burst_loss(medium, net::BurstLossSpec{0.01, 0.2, 0.0, 0.5});
  faults.duplication(0.05, duration::millis(50));
  faults.jitter(0.10, duration::millis(50));
  faults.partition(duration::seconds(3), {ids.begin(), ids.begin() + 15},
                   duration::seconds(2));
  faults.partition(duration::seconds(8), {ids.begin() + 50, ids.begin() + 70},
                   duration::seconds(2));
  faults.pause(duration::seconds(5), ids[7], duration::seconds(2));
  faults.pause(duration::seconds(10), ids[42], duration::millis(1500));

  sim.run_until(duration::seconds(15));
  // Quiesce: all faults healed; cease fire (autopilots keep gossiping but
  // stop shooting — a live match never runs out of in-flight claims), then
  // drain outstanding hit claims (bounded).
  for (const auto& p : players) p->set_autopilot(false);
  const auto claims_pending = [&] {
    for (const auto& p : players) {
      if (p->pending_claims() > 0) return true;
    }
    return false;
  };
  while (claims_pending() && sim.now() < duration::seconds(45)) {
    sim.run_until(sim.now() + duration::seconds(1));
  }

  std::uint64_t confirmed = 0, suffered = 0, states = 0, malformed = 0, stale = 0;
  std::ostringstream dump;
  dump << sim.digest() << ":" << sim.now();
  for (const auto& p : players) {
    dump << "|" << p->digest();
    confirmed += p->stats().hits_confirmed;
    suffered += p->stats().hits_suffered;
    states += p->stats().states_received;
    malformed += p->stats().malformed_dropped;
    stale += p->stats().stale_states_dropped;
  }
  dump << "|f:" << faults.stats().burst_drops << "," << faults.stats().partition_drops
       << "," << faults.stats().duplicates_injected << "," << faults.stats().frames_jittered;

  // Invariants checked inside the run so both twin runs are full soaks.
  EXPECT_FALSE(claims_pending()) << "hit claims failed to drain after heal";
  for (const auto& p : players) {
    EXPECT_EQ(p->self_state().score,
              kHitReward * static_cast<std::int64_t>(p->stats().hits_confirmed) -
                  kHitPenalty * static_cast<std::int64_t>(p->stats().hits_suffered));
    EXPECT_EQ(p->peers().size(), kPlayers - 1);  // everyone is back after heal
  }
  EXPECT_EQ(confirmed, suffered) << "a hit was double-counted or lost";
  EXPECT_GT(confirmed, 0u) << "soak produced no hits at all";
  EXPECT_EQ(malformed, 0u) << "faults must never corrupt frames, only drop/dup/delay";
  EXPECT_GT(stale, 0u) << "duplication injected but no stale state was ever rejected";
  EXPECT_GT(faults.stats().burst_drops, 0u);
  EXPECT_GT(faults.stats().duplicates_injected, 0u);
  if (report != nullptr) {
    report->confirmed = confirmed;
    report->suffered = suffered;
    report->states = states;
  }
  return dump.str();
}

TEST(MazewarChaos, SoakHoldsScoreInvariantsUnderComposedFaults) {
  SoakReport report;
  mazewar_chaos_run(0xcafe, &report);
  EXPECT_GT(report.states, 10000u);  // the gossip mesh actually ran
}

TEST(MazewarChaos, TwinRunsAreByteIdentical) {
  const std::string a = mazewar_chaos_run(0xbeef);
  const std::string b = mazewar_chaos_run(0xbeef);
  EXPECT_EQ(a, b) << "same seed, same faults: the soak must be deterministic";
  const std::string c = mazewar_chaos_run(0xbeef + 1);
  EXPECT_NE(a, c) << "different seed should explore a different trajectory";
}

// ---------------------------------------------------------------------------
// Real sockets: the identical Player over loopback UDP.

TEST(MazewarUdp, PlayersGossipAndScoreOverLoopback) {
  const auto base = static_cast<std::uint16_t>(23000 + (getpid() % 1500) * 8);
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}};
  net::UdpStackConfig ncfg;
  ncfg.port_base = base;
  ncfg.peers = ids;
  net::UdpStack s1{ids[0], ncfg};
  net::UdpStack s2{ids[1], ncfg};

  MazeConfig cfg;
  cfg.state_period = duration::millis(20);  // fast ticks: real time is scarce
  cfg.hit_retry = duration::millis(50);
  Player p1{s1, cfg};
  Player p2{s2, cfg};

  // Interleave the two event loops until both views are live.
  const auto pump_until = [&](const std::function<bool()>& pred, Time budget) {
    const Time until = s1.now() + budget;
    while (!pred() && s1.now() < until) {
      s1.poll_once(duration::millis(2));
      s2.poll_once(duration::millis(2));
    }
    return pred();
  };
  ASSERT_TRUE(pump_until(
      [&] {
        return p1.peers().size() == 1 && p2.peers().size() == 1 &&
               p1.stats().states_received >= 20 && p2.stats().states_received >= 20;
      },
      duration::seconds(10)));

  // Score invariant holds on the real backend too, and any claims drain.
  ASSERT_TRUE(pump_until(
      [&] { return p1.pending_claims() == 0 && p2.pending_claims() == 0; },
      duration::seconds(5)));
  for (const Player* p : {&p1, &p2}) {
    EXPECT_EQ(p->self_state().score,
              kHitReward * static_cast<std::int64_t>(p->stats().hits_confirmed) -
                  kHitPenalty * static_cast<std::int64_t>(p->stats().hits_suffered));
    EXPECT_EQ(p->stats().malformed_dropped, 0u);
  }

  // The survivor drops the departed player — via the leave broadcast, or
  // (should that one datagram be lost) via peer-timeout expiry.
  p1.leave();
  ASSERT_TRUE(pump_until([&] { return p2.peers().empty(); }, duration::seconds(6)));
  EXPECT_EQ(p2.stats().leaves_seen + p2.stats().peers_expired, 1u);
}

}  // namespace
}  // namespace ndsm::apps::mazewar
