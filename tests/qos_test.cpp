#include <gtest/gtest.h>

#include "qos/benefit.hpp"
#include "qos/matcher.hpp"
#include "qos/spec.hpp"

namespace ndsm::qos {
namespace {

using serialize::Value;

TEST(Benefit, ConstantIsDelayInsensitive) {
  const auto f = BenefitFunction::constant(0.8);
  EXPECT_DOUBLE_EQ(f.eval(0), 0.8);
  EXPECT_DOUBLE_EQ(f.eval(duration::hours(5)), 0.8);
  EXPECT_EQ(f.deadline_for(0.5), kTimeNever);
}

TEST(Benefit, StepDropsAtDeadline) {
  const auto f = BenefitFunction::step(duration::seconds(1));
  EXPECT_DOUBLE_EQ(f.eval(duration::millis(999)), 1.0);
  EXPECT_DOUBLE_EQ(f.eval(duration::seconds(1)), 1.0);
  EXPECT_DOUBLE_EQ(f.eval(duration::seconds(1) + 1), 0.0);
  EXPECT_EQ(f.deadline_for(0.5), duration::seconds(1));
}

TEST(Benefit, LinearDecays) {
  const auto f = BenefitFunction::linear(duration::seconds(1), duration::seconds(3));
  EXPECT_DOUBLE_EQ(f.eval(duration::seconds(1)), 1.0);
  EXPECT_DOUBLE_EQ(f.eval(duration::seconds(2)), 0.5);
  EXPECT_DOUBLE_EQ(f.eval(duration::seconds(3)), 0.0);
  EXPECT_DOUBLE_EQ(f.eval(duration::seconds(30)), 0.0);
  EXPECT_EQ(f.deadline_for(0.5), duration::seconds(2));
  EXPECT_EQ(f.deadline_for(1.0), duration::seconds(1));
}

TEST(Benefit, LinearDegenerate) {
  // zero_at < full_until clamps to a step at full_until.
  const auto f = BenefitFunction::linear(duration::seconds(2), duration::seconds(1));
  EXPECT_DOUBLE_EQ(f.eval(duration::seconds(2)), 1.0);
  EXPECT_DOUBLE_EQ(f.eval(duration::seconds(2) + 1), 0.0);
}

TEST(Benefit, SigmoidMonotoneAndMidpoint) {
  const auto f = BenefitFunction::sigmoid(duration::seconds(10), 1.0);
  EXPECT_NEAR(f.eval(duration::seconds(10)), 0.5, 1e-9);
  EXPECT_GT(f.eval(duration::seconds(5)), 0.9);
  EXPECT_LT(f.eval(duration::seconds(15)), 0.1);
  double prev = 1.0;
  for (int s = 0; s <= 20; ++s) {
    const double v = f.eval(duration::seconds(s));
    EXPECT_LE(v, prev);
    prev = v;
  }
  EXPECT_NEAR(to_seconds(f.deadline_for(0.5)), 10.0, 1e-6);
}

TEST(Benefit, NegativeDelayClamped) {
  const auto f = BenefitFunction::step(duration::seconds(1));
  EXPECT_DOUBLE_EQ(f.eval(-5), 1.0);
}

TEST(Benefit, UrgencyOrdering) {
  const auto rt = BenefitFunction::step(duration::millis(100));
  const auto email = BenefitFunction::linear(duration::minutes(10), duration::hours(1));
  EXPECT_TRUE(rt.more_urgent_than(email));
  EXPECT_FALSE(email.more_urgent_than(rt));
}

TEST(Benefit, CodecRoundTrip) {
  const std::vector<BenefitFunction> fns = {
      BenefitFunction::constant(0.3), BenefitFunction::step(duration::seconds(5)),
      BenefitFunction::linear(duration::seconds(1), duration::seconds(9)),
      BenefitFunction::sigmoid(duration::seconds(4), 2.5)};
  for (const auto& f : fns) {
    serialize::Writer w;
    f.encode(w);
    serialize::Reader r{w.data()};
    const auto decoded = BenefitFunction::decode(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, f);
    EXPECT_DOUBLE_EQ(decoded->eval(duration::seconds(2)), f.eval(duration::seconds(2)));
  }
}

AttributeRequirement req(std::string name, CmpOp op, Value v, bool mandatory = true) {
  AttributeRequirement r;
  r.name = std::move(name);
  r.op = op;
  r.value = std::move(v);
  r.mandatory = mandatory;
  return r;
}

TEST(Attributes, ComparisonOperators) {
  Attributes attrs{{"dpi", Value{600}}, {"color", Value{true}}, {"name", Value{"laser-3"}}};
  EXPECT_TRUE(req("dpi", CmpOp::kEq, Value{600}).satisfied_by(attrs));
  EXPECT_TRUE(req("dpi", CmpOp::kGe, Value{600}).satisfied_by(attrs));
  EXPECT_TRUE(req("dpi", CmpOp::kGt, Value{599}).satisfied_by(attrs));
  EXPECT_FALSE(req("dpi", CmpOp::kGt, Value{600}).satisfied_by(attrs));
  EXPECT_TRUE(req("dpi", CmpOp::kLe, Value{600}).satisfied_by(attrs));
  EXPECT_TRUE(req("dpi", CmpOp::kNe, Value{300}).satisfied_by(attrs));
  EXPECT_TRUE(req("color", CmpOp::kExists, Value{}).satisfied_by(attrs));
  EXPECT_FALSE(req("missing", CmpOp::kExists, Value{}).satisfied_by(attrs));
  EXPECT_TRUE(req("name", CmpOp::kPrefix, Value{"laser"}).satisfied_by(attrs));
  EXPECT_FALSE(req("name", CmpOp::kPrefix, Value{"inkjet"}).satisfied_by(attrs));
}

TEST(Attributes, NumericCrossTypeComparison) {
  Attributes attrs{{"rate", Value{2.5}}};
  EXPECT_TRUE(req("rate", CmpOp::kGt, Value{2}).satisfied_by(attrs));  // int vs float
  EXPECT_TRUE(req("rate", CmpOp::kLt, Value{3}).satisfied_by(attrs));
}

TEST(Attributes, IncomparableTypesFail) {
  Attributes attrs{{"name", Value{"abc"}}};
  EXPECT_FALSE(req("name", CmpOp::kGt, Value{5}).satisfied_by(attrs));
  EXPECT_FALSE(req("name", CmpOp::kEq, Value{5}).satisfied_by(attrs));
}

TEST(Attributes, OpStringRoundTrip) {
  for (int i = 0; i <= static_cast<int>(CmpOp::kPrefix); ++i) {
    const auto op = static_cast<CmpOp>(i);
    const auto parsed = cmp_op_from_string(to_string(op));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(cmp_op_from_string("bogus").has_value());
}

SupplierQos printer(double reliability = 0.95, Vec2 pos = {0, 0}) {
  SupplierQos s;
  s.service_type = "printer";
  s.attributes = {{"dpi", Value{600}}, {"color", Value{true}}};
  s.reliability = reliability;
  s.availability = 0.99;
  s.power_w = 1.5;
  s.position = pos;
  return s;
}

ConsumerQos wants_printer() {
  ConsumerQos c;
  c.service_type = "printer";
  c.requirements = {req("dpi", CmpOp::kGe, Value{300})};
  return c;
}

TEST(Matcher, TypeMismatchInfeasible) {
  auto c = wants_printer();
  c.service_type = "scanner";
  const auto e = Matcher::evaluate(c, printer());
  EXPECT_FALSE(e.feasible);
  EXPECT_EQ(e.reject_reason, "type mismatch");
}

TEST(Matcher, MandatoryAttributeGates) {
  auto c = wants_printer();
  c.requirements = {req("dpi", CmpOp::kGe, Value{1200})};
  const auto e = Matcher::evaluate(c, printer());
  EXPECT_FALSE(e.feasible);
  EXPECT_NE(e.reject_reason.find("dpi"), std::string::npos);
}

TEST(Matcher, OptionalAttributeOnlyAffectsScore) {
  auto c = wants_printer();
  c.requirements.push_back(req("duplex", CmpOp::kExists, Value{}, /*mandatory=*/false));
  const auto without = Matcher::evaluate(c, printer());
  ASSERT_TRUE(without.feasible);

  auto duplex_printer = printer();
  duplex_printer.attributes["duplex"] = Value{true};
  const auto with = Matcher::evaluate(c, duplex_printer);
  ASSERT_TRUE(with.feasible);
  EXPECT_GT(with.score, without.score);
}

TEST(Matcher, ReliabilityFloor) {
  auto c = wants_printer();
  c.min_reliability = 0.99;
  EXPECT_FALSE(Matcher::evaluate(c, printer(0.95)).feasible);
  EXPECT_TRUE(Matcher::evaluate(c, printer(0.995)).feasible);
}

TEST(Matcher, AvailabilityFloor) {
  auto c = wants_printer();
  c.min_availability = 0.999;
  EXPECT_FALSE(Matcher::evaluate(c, printer()).feasible);  // printer has 0.99
}

TEST(Matcher, PasswordVerification) {
  auto secured = printer();
  secured.set_password("s3cret");
  auto c = wants_printer();
  EXPECT_FALSE(Matcher::evaluate(c, secured).feasible);
  c.password = "wrong";
  EXPECT_FALSE(Matcher::evaluate(c, secured).feasible);
  c.password = "s3cret";
  EXPECT_TRUE(Matcher::evaluate(c, secured).feasible);
  // Open suppliers ignore presented passwords.
  EXPECT_TRUE(Matcher::evaluate(c, printer()).feasible);
}

TEST(Matcher, SpatialBoundGates) {
  auto c = wants_printer();
  c.position = Vec2{0, 0};
  c.max_distance_m = 50;
  EXPECT_TRUE(Matcher::evaluate(c, printer(0.95, {30, 0})).feasible);
  const auto e = Matcher::evaluate(c, printer(0.95, {60, 0}));
  EXPECT_FALSE(e.feasible);
  EXPECT_EQ(e.reject_reason, "outside spatial bound");
}

TEST(Matcher, NearerSuppliersScoreHigher) {
  auto c = wants_printer();
  c.position = Vec2{0, 0};
  c.max_distance_m = 100;
  const auto near = Matcher::evaluate(c, printer(0.95, {10, 0}));
  const auto far = Matcher::evaluate(c, printer(0.95, {90, 0}));
  ASSERT_TRUE(near.feasible);
  ASSERT_TRUE(far.feasible);
  EXPECT_GT(near.score, far.score);
}

TEST(Matcher, ExplicitDistanceOverridesPositions) {
  auto c = wants_printer();
  c.position = Vec2{0, 0};
  c.max_distance_m = 50;
  // Spec position is near but discovery knows the printer moved far away.
  EXPECT_FALSE(Matcher::evaluate(c, printer(0.95, {10, 0}), /*distance_m=*/70).feasible);
}

TEST(Matcher, LowerPowerPreferredOtherEqual) {
  auto c = wants_printer();
  auto hungry = printer();
  hungry.power_w = 20.0;
  auto frugal = printer();
  frugal.power_w = 0.1;
  EXPECT_GT(Matcher::evaluate(c, frugal).score, Matcher::evaluate(c, hungry).score);
}

TEST(Matcher, RankOrdersByScore) {
  auto c = wants_printer();
  c.position = Vec2{0, 0};
  c.max_distance_m = 200;
  std::vector<SupplierQos> suppliers = {
      printer(0.95, {150, 0}),  // far
      printer(0.95, {5, 0}),    // near -> best
      printer(0.40, {5, 0}),    // near but unreliable
  };
  auto scanner = printer();
  scanner.service_type = "scanner";
  suppliers.push_back(scanner);  // infeasible

  const auto ranked = Matcher::rank(c, suppliers);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], 1u);
  // Scanner excluded entirely.
  for (const auto i : ranked) EXPECT_NE(i, 3u);
}

TEST(Spec, SupplierBinaryRoundTrip) {
  auto s = printer(0.9, {3, 4});
  s.set_password("pw");
  serialize::Writer w;
  s.encode(w);
  serialize::Reader r{w.data()};
  const auto decoded = SupplierQos::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service_type, "printer");
  EXPECT_EQ(decoded->attributes.at("dpi"), Value{600});
  EXPECT_DOUBLE_EQ(decoded->reliability, 0.9);
  EXPECT_TRUE(decoded->requires_password);
  EXPECT_EQ(decoded->password_digest, s.password_digest);
  ASSERT_TRUE(decoded->position.has_value());
  EXPECT_EQ(*decoded->position, (Vec2{3, 4}));
}

TEST(Spec, ConsumerBinaryRoundTrip) {
  auto c = wants_printer();
  c.min_reliability = 0.5;
  c.timeliness = BenefitFunction::linear(duration::seconds(1), duration::seconds(5));
  c.password = "pw";
  c.position = Vec2{1, 2};
  c.max_distance_m = 75;
  c.proximity_weight = 2.0;
  serialize::Writer w;
  c.encode(w);
  serialize::Reader r{w.data()};
  const auto decoded = ConsumerQos::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service_type, "printer");
  ASSERT_EQ(decoded->requirements.size(), 1u);
  EXPECT_EQ(decoded->requirements[0].name, "dpi");
  EXPECT_EQ(decoded->requirements[0].op, CmpOp::kGe);
  EXPECT_DOUBLE_EQ(decoded->min_reliability, 0.5);
  EXPECT_EQ(decoded->timeliness, c.timeliness);
  EXPECT_EQ(decoded->password, "pw");
  EXPECT_DOUBLE_EQ(decoded->max_distance_m, 75);
  EXPECT_DOUBLE_EQ(decoded->proximity_weight, 2.0);
}

TEST(Spec, SupplierMarkupRoundTrip) {
  auto s = printer(0.9, {3, 4});
  const auto node = s.to_markup();
  const auto parsed = SupplierQos::from_markup(node);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto& p = parsed.value();
  EXPECT_EQ(p.service_type, "printer");
  EXPECT_DOUBLE_EQ(p.reliability, 0.9);
  EXPECT_EQ(p.attributes.at("dpi"), Value{600});
  EXPECT_EQ(p.attributes.at("color"), Value{true});
  ASSERT_TRUE(p.position.has_value());
  EXPECT_EQ(*p.position, (Vec2{3, 4}));
}

TEST(Spec, SupplierMarkupTextualRoundTrip) {
  // Through actual markup text, the full §3.9 interop path.
  auto s = printer();
  const std::string text = interop::write_markup(s.to_markup());
  const auto tree = interop::parse_markup(text);
  ASSERT_TRUE(tree.is_ok());
  const auto parsed = SupplierQos::from_markup(tree.value());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().service_type, "printer");
}

TEST(Spec, TruncatedDecodeFails) {
  auto s = printer();
  serialize::Writer w;
  s.encode(w);
  Bytes data = w.data();
  data.resize(data.size() / 2);
  serialize::Reader r{data};
  EXPECT_FALSE(SupplierQos::decode(r).has_value());
}

// Parameterized sweep: proximity score is monotonically non-increasing in
// distance for a spectrum of max_distance bounds.
class ProximityMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ProximityMonotonicity, ScoreNonIncreasingInDistance) {
  auto c = wants_printer();
  c.position = Vec2{0, 0};
  c.max_distance_m = GetParam();
  double prev = 1e9;
  for (double d = 0; d < GetParam(); d += GetParam() / 16) {
    const auto e = Matcher::evaluate(c, printer(0.95, {d, 0}));
    ASSERT_TRUE(e.feasible) << d;
    EXPECT_LE(e.score, prev + 1e-12) << d;
    prev = e.score;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, ProximityMonotonicity,
                         ::testing::Values(10.0, 50.0, 100.0, 500.0));

}  // namespace
}  // namespace ndsm::qos
