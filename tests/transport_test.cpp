#include <gtest/gtest.h>

#include <stdexcept>

#include "net/faults.hpp"
#include "test_helpers.hpp"
#include "transport/reliable.hpp"

namespace ndsm::transport {
namespace {

using testing::Lan;
using testing::WirelessGrid;

TEST(Transport, BasicDelivery) {
  Lan lan{2};
  Bytes got;
  NodeId from;
  lan.transport(1).set_receiver(ports::kApp, [&](NodeId src, const Bytes& b) {
    got = b;
    from = src;
  });
  ASSERT_TRUE(lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("hello")).is_ok());
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(to_string(got), "hello");
  EXPECT_EQ(from, lan.nodes[0]);
}

TEST(Transport, DuplicatePortBindIsHardErrorInAllBuilds) {
  // Regression: this used to be assert-only, so release builds silently
  // overwrote the old handler. Now it throws in every build type, and
  // the original binding keeps receiving.
  Lan lan{2};
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  lan.transport(1).set_receiver(ports::kApp, [&](NodeId, const Bytes&) { first++; });
  EXPECT_THROW(
      lan.transport(1).set_receiver(ports::kApp, [&](NodeId, const Bytes&) { second++; }),
      std::logic_error);
  ASSERT_TRUE(lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("x")).is_ok());
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 0u);
  // clear_receiver is the sanctioned rebind path.
  lan.transport(1).clear_receiver(ports::kApp);
  lan.transport(1).set_receiver(ports::kApp, [&](NodeId, const Bytes&) { second++; });
  ASSERT_TRUE(lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("y")).is_ok());
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(second, 1u);
}

TEST(Transport, CompletionCallbackFiresOnAck) {
  Lan lan{2};
  lan.transport(1).set_receiver(ports::kApp, [](NodeId, const Bytes&) {});
  bool completed = false;
  Status result{ErrorCode::kInternal, "never set"};
  lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("x"), [&](Status s) {
    completed = true;
    result = s;
  });
  lan.sim.run_until(duration::seconds(1));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(result.is_ok());
}

TEST(Transport, PortDemultiplexing) {
  Lan lan{2};
  std::string on_a;
  std::string on_b;
  lan.transport(1).set_receiver(ports::kApp, [&](NodeId, const Bytes& b) { on_a = to_string(b); });
  lan.transport(1).set_receiver(ports::kRpc, [&](NodeId, const Bytes& b) { on_b = to_string(b); });
  lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("for-app"));
  lan.transport(0).send(lan.nodes[1], ports::kRpc, to_bytes("for-rpc"));
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(on_a, "for-app");
  EXPECT_EQ(on_b, "for-rpc");
}

TEST(Transport, LargeMessageFragmentsAndReassembles) {
  Lan lan{2};
  Bytes big(10000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i * 7);
  Bytes got;
  lan.transport(1).set_receiver(ports::kApp, [&](NodeId, const Bytes& b) { got = b; });
  ASSERT_TRUE(lan.transport(0).send(lan.nodes[1], ports::kApp, big).is_ok());
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(got, big);
  // 10000 / 96 -> 105 fragments.
  EXPECT_GE(lan.transport(0).stats().fragments_sent, 105u);
}

TEST(Transport, EmptyMessageDelivered) {
  Lan lan{2};
  bool got = false;
  std::size_t len = 99;
  lan.transport(1).set_receiver(ports::kApp, [&](NodeId, const Bytes& b) {
    got = true;
    len = b.size();
  });
  ASSERT_TRUE(lan.transport(0).send(lan.nodes[1], ports::kApp, Bytes{}).is_ok());
  lan.sim.run_until(duration::seconds(1));
  EXPECT_TRUE(got);
  EXPECT_EQ(len, 0u);
}

TEST(Transport, SelfSendIsLocal) {
  Lan lan{1};
  Bytes got;
  bool completed = false;
  lan.transport(0).set_receiver(ports::kApp, [&](NodeId src, const Bytes& b) {
    EXPECT_EQ(src, lan.nodes[0]);
    got = b;
  });
  lan.transport(0).send(lan.nodes[0], ports::kApp, to_bytes("self"),
                        [&](Status s) { completed = s.is_ok(); });
  lan.sim.run_until(duration::millis(10));
  EXPECT_EQ(to_string(got), "self");
  EXPECT_TRUE(completed);
}

TEST(Transport, RecoversFromHeavyLoss) {
  // 30% frame loss on a 2-node wireless link; retransmission must recover.
  WirelessGrid grid{2, 20.0, 42, 1e9, /*loss=*/0.3};
  grid.with_routers<routing::FloodingRouter>();
  int delivered = 0;
  grid.transport(1).set_receiver(ports::kApp, [&](NodeId, const Bytes&) { delivered++; });
  int completed_ok = 0;
  for (int i = 0; i < 20; ++i) {
    grid.transport(0).send(grid.nodes[1], ports::kApp, to_bytes("msg"), [&](Status s) {
      if (s.is_ok()) completed_ok++;
    });
  }
  grid.sim.run_until(duration::seconds(30));
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(completed_ok, 20);
  EXPECT_GT(grid.transport(0).stats().retransmissions, 0u);
}

TEST(Transport, NoDuplicateDeliveryUnderLoss) {
  WirelessGrid grid{2, 20.0, 7, 1e9, /*loss=*/0.4};
  grid.with_routers<routing::FloodingRouter>();
  int delivered = 0;
  grid.transport(1).set_receiver(ports::kApp, [&](NodeId, const Bytes&) { delivered++; });
  for (int i = 0; i < 10; ++i) {
    grid.transport(0).send(grid.nodes[1], ports::kApp, to_bytes("once"));
  }
  grid.sim.run_until(duration::seconds(60));
  EXPECT_EQ(delivered, 10);  // exactly once each despite retransmits
}

// Satellite regression (DESIGN §15): hostile transport frames — garbage,
// truncations, and a fragment header claiming 2^60 total fragments — are
// counted into malformed_dropped and the transport keeps working. The
// 2^60 case used to resize() the reassembly vector to the declared count.
TEST(Transport, MalformedFramesCountedAndDropped) {
  Lan lan{2};
  Bytes got;
  lan.transport(1).set_receiver(ports::kApp, [&](NodeId, const Bytes& b) { got = b; });

  const auto inject = [&](Bytes frame) {
    ASSERT_TRUE(lan.router(0)
                    .send(lan.nodes[1], net::Proto::kTransport, std::move(frame))
                    .is_ok());
  };
  inject(Bytes{});                     // empty frame
  inject(Bytes{0xff, 0xfe, 0xfd});     // unknown kind
  inject(Bytes{1});                    // fragment kind, then nothing
  {
    serialize::Writer w;  // fragment claiming 2^60 total fragments
    w.u8(1);              // kFragment
    w.varint(1);          // epoch
    w.varint(99);         // msg id
    w.u16(ports::kApp);
    w.varint(0);          // index
    w.varint(1ULL << 60); // hostile count
    w.bytes(to_bytes("overflow"));
    inject(std::move(w).take());
  }
  {
    serialize::Writer w;  // ack truncated after the epoch
    w.u8(2);              // kAck
    w.varint(1);
    inject(std::move(w).take());
  }
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(lan.transport(1).stats().malformed_dropped, 5u);
  EXPECT_EQ(lan.transport(1).stats().messages_delivered, 0u);

  // The transport is still fully functional afterwards.
  ASSERT_TRUE(lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("alive")).is_ok());
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(to_string(got), "alive");
}

TEST(Transport, FailureReportedWhenPeerDead) {
  Lan lan{2};
  lan.world.kill(lan.nodes[1]);
  Status result;
  lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("x"),
                        [&](Status s) { result = s; });
  lan.sim.run_until(duration::minutes(2));
  EXPECT_EQ(result.code(), ErrorCode::kTimeout);
  EXPECT_EQ(lan.transport(0).stats().messages_failed, 1u);
}

TEST(Transport, ManyConcurrentMessagesAllComplete) {
  Lan lan{4};
  int delivered = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    lan.transport(i).set_receiver(ports::kApp, [&](NodeId, const Bytes&) { delivered++; });
  }
  int sent = 0;
  for (std::size_t from = 0; from < 4; ++from) {
    for (std::size_t to = 0; to < 4; ++to) {
      if (from == to) continue;
      for (int k = 0; k < 5; ++k) {
        lan.transport(from).send(lan.nodes[to], ports::kApp, to_bytes("m"));
        sent++;
      }
    }
  }
  lan.sim.run_until(duration::seconds(5));
  EXPECT_EQ(delivered, sent);
}

TEST(Transport, MultiHopReliableDelivery) {
  WirelessGrid grid{9, 20.0, 42, 1e9, /*loss=*/0.1};
  grid.with_routers<routing::FloodingRouter>();
  Bytes got;
  grid.transport(8).set_receiver(ports::kApp, [&](NodeId, const Bytes& b) { got = b; });
  Bytes payload(500, 0xaa);
  bool ok = false;
  grid.transport(0).send(grid.nodes[8], ports::kApp, payload,
                         [&](Status s) { ok = s.is_ok(); });
  grid.sim.run_until(duration::seconds(30));
  EXPECT_EQ(got, payload);
  EXPECT_TRUE(ok);
}

TEST(Transport, StatsTrackPayloadBytes) {
  Lan lan{2};
  lan.transport(1).set_receiver(ports::kApp, [](NodeId, const Bytes&) {});
  lan.transport(0).send(lan.nodes[1], ports::kApp, Bytes(1234, 1));
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(lan.transport(0).stats().payload_bytes_sent, 1234u);
  EXPECT_EQ(lan.transport(1).stats().payload_bytes_delivered, 1234u);
  EXPECT_EQ(lan.transport(1).stats().messages_delivered, 1u);
}

TEST(Transport, RtoBackoffBoundsAttempts) {
  Lan lan{2};
  lan.world.kill(lan.nodes[1]);
  TransportConfig cfg;
  EXPECT_EQ(cfg.max_retries, 5);
  Status result;
  lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("x"),
                        [&](Status s) { result = s; });
  lan.sim.run_until(duration::minutes(5));
  // initial 200ms with x2 backoff, 5 retries: attempts at ~0.2,0.4,...
  const auto& stats = lan.transport(0).stats();
  EXPECT_EQ(stats.fragments_sent, 1u + 5u);  // initial + retries
}

TEST(Transport, RetryExhaustionReportsOnceAndFreesAllState) {
  // Regression for the failure path: a multi-fragment message is cut off
  // mid-flight (the radio range collapses), the sender exhausts
  // max_retries, and then (1) the completion callback fires exactly once
  // with an error, (2) the sender's outbox is empty, and (3) the
  // receiver's half-assembled message is GC'd by the reassembly timeout
  // instead of leaking forever.
  sim::Simulator sim{5};
  net::World world{sim};
  // A lossy radio drops part of the opening salvo, so the receiver is
  // left holding a genuinely partial reassembly when the link dies.
  const MediumId radio = world.add_medium(net::sensor_radio(/*range_m=*/30, /*loss=*/0.4));
  node::StackConfig cfg;
  cfg.router = node::RouterPolicy::kFlooding;
  cfg.media = {radio};
  cfg.transport.max_retries = 3;
  cfg.transport.initial_rto = duration::millis(100);
  cfg.transport.reassembly_timeout = duration::seconds(5);
  node::Runtime a{world, Vec2{0, 0}, cfg};
  node::Runtime b{world, Vec2{20, 0}, cfg};
  b.transport().set_receiver(ports::kApp, [](NodeId, const Bytes&) {});

  int completions = 0;
  Status result = Status::ok();
  // 21 fragments leave in one salvo at t=10ms; ~40% never land. The link
  // dies before the first retransmission (rto 100ms), so the message is
  // stuck partly across forever.
  sim.schedule_at(duration::millis(10), [&] {
    a.transport().send(b.id(), ports::kApp, Bytes(2000, 0x5a), [&](Status s) {
      completions++;
      result = s;
    });
  });
  sim.schedule_at(duration::millis(50), [&] { world.set_medium_range(radio, 0.01); });
  sim.run_until(duration::seconds(30));

  EXPECT_EQ(completions, 1);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(a.transport().stats().messages_failed, 1u);
  EXPECT_EQ(a.transport().outbox_size(), 0u);
  EXPECT_GE(b.transport().stats().reassemblies_expired, 1u);
  EXPECT_EQ(b.transport().reassembly_count(), 0u);
}

TEST(Transport, ReassemblyGcSparesLiveTransfers) {
  // A slow but alive multi-fragment transfer under loss must NOT be
  // garbage-collected: the idle clock resets on every fragment, so a
  // transfer that outlives the reassembly timeout still completes.
  sim::Simulator sim{7};
  net::World world{sim};
  const MediumId radio = world.add_medium(net::wifi80211(/*range_m=*/50, /*loss=*/0.3));
  node::StackConfig cfg;
  cfg.router = node::RouterPolicy::kFlooding;
  cfg.media = {radio};
  cfg.transport.initial_rto = duration::millis(150);
  cfg.transport.rto_backoff = 1.0;  // constant-rate salvos: gaps stay < timeout
  cfg.transport.max_retries = 30;
  cfg.transport.reassembly_timeout = duration::millis(500);
  node::Runtime a{world, Vec2{0, 0}, cfg};
  node::Runtime b{world, Vec2{20, 0}, cfg};
  Bytes got;
  b.transport().set_receiver(ports::kApp, [&](NodeId, const Bytes& p) { got = p; });
  Bytes payload(5000, 0x7e);
  bool ok = false;
  Time done_at = 0;
  a.transport().send(b.id(), ports::kApp, payload, [&](Status s) {
    ok = s.is_ok();
    done_at = sim.now();
  });
  sim.run_until(duration::minutes(2));
  EXPECT_TRUE(ok);
  EXPECT_EQ(got, payload);
  // The transfer really did straddle the timeout window...
  EXPECT_GT(done_at, cfg.transport.reassembly_timeout);
  // ...yet nothing was expired out from under it.
  EXPECT_EQ(b.transport().stats().reassemblies_expired, 0u);
  EXPECT_EQ(b.transport().reassembly_count(), 0u);
}

TEST(Transport, LateDuplicatesBeyondDedupWindowStillSuppressed) {
  // Regression: the dedup window only remembered the last `dedup_window`
  // completed ids as a set, so a frame duplicated later than that (easy
  // for a delay-jitter fault to arrange) was re-delivered to the
  // application. The monotone per-peer floor closes the hole: every id at
  // or below the floor stays rejected forever, so shrinking the window to
  // 2 while the fault layer duplicates *every* frame with up to 800ms of
  // extra delay must still deliver each payload exactly once.
  sim::Simulator sim{42};
  net::World world{sim};
  const MediumId medium = world.add_medium(net::ethernet100());
  auto table = std::make_shared<routing::GlobalRoutingTable>(world, routing::Metric::kHopCount);
  node::StackConfig cfg;
  cfg.router = node::RouterPolicy::kGlobal;
  cfg.table = table;
  cfg.transport.dedup_window = 2;  // tiny: late duplicates outlive the set
  cfg.media = {medium};
  node::Runtime a{world, Vec2{0, 0}, cfg};
  node::Runtime b{world, Vec2{10, 0}, cfg};

  net::FaultPlan faults{world};
  faults.duplication(/*probability=*/1.0, /*max_extra_delay=*/duration::millis(800));

  std::unordered_map<std::string, int> deliveries;
  b.transport().set_receiver(ports::kApp, [&](NodeId, const Bytes& p) {
    deliveries[to_string(p)]++;
  });
  constexpr int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    sim.schedule_at(duration::millis(50) * (i + 1), [&, i] {
      a.transport().send(b.id(), ports::kApp, to_bytes("msg-" + std::to_string(i)));
    });
  }
  sim.run_until(duration::seconds(10));

  ASSERT_EQ(deliveries.size(), static_cast<std::size_t>(kMessages));
  for (const auto& [payload, count] : deliveries) {
    EXPECT_EQ(count, 1) << payload << " delivered " << count << " times";
  }
  EXPECT_GT(faults.stats().duplicates_injected, 0u);
  EXPECT_GT(b.transport().stats().duplicates_dropped, 0u);
}

TEST(Transport, SenderRestartReusedMessageIdsAreNotDuplicates) {
  // Regression: message ids restart from 1 after a crash/restart, and the
  // receiver's dedup state used to outlive the sender incarnation — every
  // post-restart message re-using an already-seen id was acked but
  // silently swallowed as a duplicate. Frames now carry the sender's
  // epoch; a newer epoch resets the peer window.
  Lan lan{2};
  std::vector<std::string> got;
  lan.transport(1).set_receiver(ports::kApp,
                                [&](NodeId, const Bytes& p) { got.push_back(to_string(p)); });
  ASSERT_TRUE(lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("pre-crash")).is_ok());
  lan.sim.run_until(duration::seconds(1));
  ASSERT_EQ(got, (std::vector<std::string>{"pre-crash"}));

  lan.sim.schedule_at(duration::seconds(2), [&] { lan.runtime(0).crash(); });
  lan.sim.schedule_at(duration::seconds(3), [&] { lan.runtime(0).restart(); });
  lan.sim.schedule_at(duration::seconds(4), [&] {
    // Fresh incarnation, next_msg_id back at 1 — the same wire id as
    // "pre-crash". Must be delivered, not deduped.
    ASSERT_TRUE(
        lan.transport(0).send(lan.nodes[1], ports::kApp, to_bytes("post-restart")).is_ok());
  });
  lan.sim.run_until(duration::seconds(6));

  EXPECT_EQ(got, (std::vector<std::string>{"pre-crash", "post-restart"}));
  EXPECT_EQ(lan.transport(1).stats().duplicates_dropped, 0u);
}

}  // namespace
}  // namespace ndsm::transport
