// Property-based suites: randomized inputs (deterministic per seed via
// TEST_P) checked against invariants and reference models.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "net/world_stack.hpp"
#include "milan/planner.hpp"
#include "recovery/store.hpp"
#include "routing/distance_vector.hpp"
#include "routing/flooding.hpp"
#include "test_helpers.hpp"
#include "transactions/tuple_space.hpp"
#include "transport/reliable.hpp"

namespace ndsm {
namespace {

using serialize::Value;

// ---------------------------------------------------------------------------
// Transport: exactly-once delivery under random loss, sizes and timing.
class TransportLossProperty : public ::testing::TestWithParam<int> {};

TEST_P(TransportLossProperty, ExactlyOnceDeliveryUnderLoss) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng{seed};
  const double loss = rng.uniform(0.0, 0.35);
  testing::WirelessGrid grid{4, 20.0, seed, 1e9, loss};
  grid.with_routers<routing::FloodingRouter>();

  std::map<std::string, int> received;
  grid.transport(3).set_receiver(transport::ports::kApp,
                                 [&](NodeId, const Bytes& b) { received[to_string(b)]++; });

  const int messages = 30;
  int completions = 0;
  for (int i = 0; i < messages; ++i) {
    const Time at = duration::millis(rng.uniform_int(0, 5000));
    const auto size = static_cast<std::size_t>(rng.uniform_int(1, 400));
    grid.sim.schedule_at(at, [&, i, size] {
      Bytes payload = to_bytes("msg-" + std::to_string(i) + "-");
      payload.resize(size + payload.size(), static_cast<std::uint8_t>(i));
      grid.transport(0).send(grid.nodes[3], transport::ports::kApp, payload,
                             [&](Status s) {
                               if (s.is_ok()) completions++;
                             });
    });
  }
  grid.sim.run_until(duration::seconds(60));
  // At-most-once: nothing is ever delivered twice.
  int delivered_once = 0;
  for (const auto& [key, count] : received) {
    EXPECT_EQ(count, 1) << key << " duplicated (loss=" << loss << ")";
    delivered_once++;
  }
  // Completion implies delivery (acks can be lost after delivery, so the
  // reverse does not hold: delivered >= completed).
  EXPECT_GE(delivered_once, completions);
  // With loss < 0.35 and 5 retries, virtually everything should land.
  EXPECT_GE(delivered_once, messages - 2);
  EXPECT_GE(completions, messages - 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportLossProperty, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Distance-vector routing: after convergence on a random connected
// topology, every pair with a physical path has a route, and data actually
// arrives over it.
class DvRandomTopologyProperty : public ::testing::TestWithParam<int> {};

TEST_P(DvRandomTopologyProperty, ConvergesToReachabilityTruth) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng{seed * 1000 + 17};
  sim::Simulator sim{seed};
  net::World world{sim};
  const MediumId m = world.add_medium(net::wifi80211(30, 0));
  // Random nodes in a 100x100 box; keep only the largest connected story
  // simple: drop runs whose graph is disconnected from node 0.
  const std::size_t n = 8 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(world.add_node({rng.uniform(0, 100), rng.uniform(0, 100)}));
    world.attach(nodes.back(), m);
  }
  // Reference reachability from the ground-truth neighbour graph (BFS).
  auto reachable_from = [&](NodeId start) {
    std::set<NodeId> seen{start};
    std::vector<NodeId> queue{start};
    while (!queue.empty()) {
      const NodeId u = queue.back();
      queue.pop_back();
      for (const NodeId v : world.neighbors(u)) {
        if (seen.insert(v).second) queue.push_back(v);
      }
    }
    return seen;
  };

  std::vector<std::unique_ptr<net::WorldStack>> stacks;
  std::vector<std::unique_ptr<routing::DistanceVectorRouter>> routers;
  for (const NodeId id : nodes) {
    stacks.push_back(std::make_unique<net::WorldStack>(world, id));
    routers.push_back(
        std::make_unique<routing::DistanceVectorRouter>(*stacks.back(), duration::seconds(1)));
  }
  sim.run_until(duration::seconds(30));  // ample convergence time

  const auto truth = reachable_from(nodes[0]);
  for (std::size_t i = 0; i < n; ++i) {
    const bool physically = truth.count(nodes[i]) > 0;
    const bool routed = routers[0]->route_metric(nodes[i]) <
                        routing::DistanceVectorRouter::kInfinity;
    EXPECT_EQ(physically, routed) << "node " << i << " seed " << seed;
  }

  // Data check: send to every reachable node; all must arrive.
  int expected = 0;
  int arrived = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (truth.count(nodes[i]) == 0) continue;
    expected++;
    routers[i]->set_delivery_handler(routing::Proto::kApp,
                                     [&](NodeId, const Bytes&) { arrived++; });
    routers[0]->send(nodes[i], routing::Proto::kApp, to_bytes("ping"));
  }
  sim.run_until(duration::seconds(35));
  EXPECT_EQ(arrived, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvRandomTopologyProperty, ::testing::Range(1, 11));

// ---------------------------------------------------------------------------
// MiLAN planner: on random instances, (1) any returned feasible plan truly
// satisfies the requirements, (2) optimal lifetime >= greedy >= 0,
// (3) optimal matches brute force on small instances.
class PlannerProperty : public ::testing::TestWithParam<int> {};

milan::PlanInput random_instance(Rng& rng, std::size_t max_components) {
  milan::PlanInput input;
  const auto n_components = static_cast<std::size_t>(rng.uniform_int(
      2, static_cast<std::int64_t>(max_components)));
  const int n_vars = static_cast<int>(rng.uniform_int(1, 3));
  std::map<NodeId, double> batteries;
  for (std::size_t i = 0; i < n_components; ++i) {
    milan::Component c;
    c.id = ComponentId{i + 1};
    c.node = NodeId{i};
    const int var = static_cast<int>(rng.uniform_int(0, n_vars - 1));
    c.qos["v" + std::to_string(var)] = rng.uniform(0.3, 0.95);
    if (rng.bernoulli(0.3)) {
      c.qos["v" + std::to_string(static_cast<int>(rng.uniform_int(0, n_vars - 1)))] =
          rng.uniform(0.2, 0.6);
    }
    c.sample_power_w = rng.uniform(0.0001, 0.01);
    batteries[c.node] = rng.uniform(1.0, 100.0);
    input.components.push_back(std::move(c));
  }
  for (int v = 0; v < n_vars; ++v) {
    input.required["v" + std::to_string(v)] = rng.uniform(0.2, 0.9);
  }
  input.node_drain_w = [](const milan::Component& c) {
    return std::unordered_map<NodeId, double>{{c.node, c.sample_power_w}};
  };
  input.battery_j = [batteries](NodeId node) { return batteries.at(node); };
  return input;
}

TEST_P(PlannerProperty, FeasiblePlansSatisfyAndOptimalDominates) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 97 + 3};
  for (int trial = 0; trial < 10; ++trial) {
    const auto input = random_instance(rng, 10);
    Rng r1{static_cast<std::uint64_t>(trial)};
    const auto optimal = milan::plan_components(input, milan::Strategy::kOptimal);
    const auto greedy = milan::plan_components(input, milan::Strategy::kGreedy);
    const auto all_on = milan::plan_components(input, milan::Strategy::kAllOn);
    const auto random = milan::plan_components(input, milan::Strategy::kRandomFeasible, &r1);

    // Feasibility agreement: all strategies agree on whether the instance
    // is solvable (all-on is the maximal set).
    EXPECT_EQ(optimal.feasible, all_on.feasible);
    EXPECT_EQ(greedy.feasible, all_on.feasible);
    EXPECT_EQ(random.feasible, all_on.feasible);
    if (!optimal.feasible) continue;

    // Returned sets truly satisfy the requirements.
    for (const auto* plan : {&optimal, &greedy, &all_on, &random}) {
      std::vector<const milan::Component*> set;
      for (const auto& c : input.components) {
        if (std::find(plan->active.begin(), plan->active.end(), c.id) != plan->active.end()) {
          set.push_back(&c);
        }
      }
      EXPECT_TRUE(milan::satisfies(set, input.required));
      // achieved[] matches the formula.
      for (const auto& [variable, value] : plan->achieved) {
        EXPECT_NEAR(value, milan::combined_reliability(set, variable), 1e-9);
      }
    }

    // Dominance chain.
    EXPECT_GE(optimal.estimated_lifetime_s, greedy.estimated_lifetime_s - 1e-9);
    EXPECT_GE(optimal.estimated_lifetime_s, all_on.estimated_lifetime_s - 1e-9);
    EXPECT_GE(optimal.estimated_lifetime_s, random.estimated_lifetime_s - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Recovery: random op/crash sequences recover exactly the committed
// reference state.
class RecoveryProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryProperty, RecoversExactlyCommittedState) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919};
  recovery::StableStorage log;
  recovery::StableStorage checkpoints;
  recovery::RecoverableStore store{log, checkpoints};
  std::map<std::string, std::int64_t> reference;  // committed truth

  for (int round = 0; round < 5; ++round) {
    const int ops = static_cast<int>(rng.uniform_int(5, 60));
    for (int i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(rng.uniform_int(0, 9));
      const auto value = rng.uniform_int(0, 1000);
      const int action = static_cast<int>(rng.uniform_int(0, 9));
      if (action < 5) {
        store.put(key, Value{value});
        reference[key] = value;
      } else if (action < 7) {
        store.erase(key);
        reference.erase(key);
      } else if (action < 9) {
        // A transaction that may commit or abort (or be lost in a crash).
        const auto tx = store.begin_tx();
        const std::string tx_key = "t" + std::to_string(rng.uniform_int(0, 4));
        store.put(tx_key, Value{value}, tx);
        if (rng.bernoulli(0.6)) {
          store.commit(tx);
          reference[tx_key] = value;
        } else {
          store.abort(tx);
        }
      } else {
        store.checkpoint();
      }
    }
    // Crash & recover; committed state must equal the reference exactly.
    store.crash();
    store.recover();
    ASSERT_EQ(store.size(), reference.size()) << "round " << round;
    for (const auto& [key, value] : reference) {
      const auto got = store.get(key);
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(*got, Value{value}) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryProperty, ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Tuple space semantics: IN consumes exactly once even under contention.
class TupleContentionProperty : public ::testing::TestWithParam<int> {};

TEST_P(TupleContentionProperty, EachTupleTakenExactlyOnce) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  testing::Lan lan{6};
  transactions::TupleSpaceServer server{lan.transport(0)};
  std::vector<std::unique_ptr<transactions::TupleSpaceClient>> clients;
  for (std::size_t i = 1; i < 6; ++i) {
    clients.push_back(
        std::make_unique<transactions::TupleSpaceClient>(lan.transport(i), lan.nodes[0]));
  }
  Rng rng{seed};
  constexpr int kTuples = 20;
  int taken = 0;
  // 5 competing consumers issue blocking INs at random times.
  for (int i = 0; i < kTuples; ++i) {
    const auto who = static_cast<std::size_t>(rng.uniform_int(0, 4));
    lan.sim.schedule_at(duration::millis(rng.uniform_int(0, 2000)), [&, who] {
      clients[who]->in(transactions::Tuple{Value{"job"}, Value::wildcard()},
                       [&](bool found, transactions::Tuple) {
                         if (found) taken++;
                       },
                       /*blocking=*/true, duration::seconds(30));
    });
  }
  // Producers OUT exactly kTuples jobs at random times.
  for (int i = 0; i < kTuples; ++i) {
    const auto who = static_cast<std::size_t>(rng.uniform_int(0, 4));
    lan.sim.schedule_at(duration::millis(rng.uniform_int(0, 2000)), [&, who, i] {
      clients[who]->out(transactions::Tuple{Value{"job"}, Value{i}});
    });
  }
  lan.sim.run_until(duration::seconds(40));
  EXPECT_EQ(taken, kTuples) << "seed " << seed;
  EXPECT_EQ(server.tuple_count(), 0u);
  EXPECT_EQ(server.parked_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleContentionProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace ndsm
