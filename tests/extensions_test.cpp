// Tests for the extension features: geographic routing, session handoff,
// and MiLAN event integration.

#include <gtest/gtest.h>

#include "net/world_stack.hpp"
#include "milan/engine.hpp"
#include "routing/geographic.hpp"
#include "scheduling/handoff.hpp"
#include "test_helpers.hpp"
#include "transactions/events.hpp"

namespace ndsm {
namespace {

using serialize::Value;
using testing::Lan;
using testing::WirelessGrid;

struct GeoGrid : WirelessGrid {
  explicit GeoGrid(std::size_t n) : WirelessGrid(n) {
    with_routers<routing::GeoRouter>(duration::seconds(1));
    sim.run_until(duration::seconds(3));  // let hello beacons populate tables
  }
  routing::GeoRouter& geo(std::size_t i) {
    return static_cast<routing::GeoRouter&>(router(i));
  }
};

TEST(GeoRouting, HelloBeaconsPopulateNeighborTables) {
  GeoGrid grid{9};
  // Corner node has exactly two lattice neighbours.
  EXPECT_EQ(grid.geo(0).known_neighbors(), 2u);
  // Centre node has four.
  EXPECT_EQ(grid.geo(4).known_neighbors(), 4u);
}

TEST(GeoRouting, GreedyForwardingDeliversAcrossGrid) {
  GeoGrid grid{16};
  Bytes got;
  NodeId origin;
  grid.router(15).set_delivery_handler(routing::Proto::kApp,
                                       [&](NodeId o, const Bytes& b) {
                                         got = b;
                                         origin = o;
                                       });
  ASSERT_TRUE(grid.router(0).send(grid.nodes[15], routing::Proto::kApp,
                                  to_bytes("geo")).is_ok());
  grid.sim.run_until(duration::seconds(5));
  EXPECT_EQ(to_string(got), "geo");
  EXPECT_EQ(origin, grid.nodes[0]);
}

TEST(GeoRouting, ProgressIsMonotone) {
  // Forwarding only ever moves the packet strictly closer to the target,
  // so hop count on a line equals the Manhattan distance.
  GeoGrid grid{9};
  for (std::size_t i = 0; i < 9; ++i) {
    grid.world.set_position(grid.nodes[i], Vec2{static_cast<double>(i) * 20.0, 0});
  }
  grid.sim.run_until(duration::seconds(8));  // re-beacon at new positions
  int delivered = 0;
  grid.router(8).set_delivery_handler(routing::Proto::kApp,
                                      [&](NodeId, const Bytes&) { delivered++; });
  grid.router(0).send(grid.nodes[8], routing::Proto::kApp, to_bytes("x"));
  grid.sim.run_until(duration::seconds(10));
  EXPECT_EQ(delivered, 1);
  std::uint64_t forwards = 0;
  for (std::size_t i = 0; i < 9; ++i) forwards += grid.router(i).stats().data_forwarded;
  EXPECT_EQ(forwards, 7u);  // 8 hops = 7 intermediate forwards
}

TEST(GeoRouting, LocalMinimumCountedNotLooped) {
  // A void: the destination is across a gap no neighbour gets closer to.
  sim::Simulator sim{3};
  net::World world{sim};
  const MediumId m = world.add_medium(net::wifi80211(25, 0));
  // Source and one neighbour *behind* it; target far ahead, out of range.
  const NodeId src = world.add_node({0, 0});
  const NodeId behind = world.add_node({-20, 0});
  const NodeId target = world.add_node({100, 0});
  for (const NodeId n : {src, behind, target}) world.attach(n, m);
  net::WorldStack s_src{world, src};
  net::WorldStack s_behind{world, behind};
  net::WorldStack s_target{world, target};
  routing::GeoRouter r_src{s_src, duration::seconds(1)};
  routing::GeoRouter r_behind{s_behind, duration::seconds(1)};
  routing::GeoRouter r_target{s_target, duration::seconds(1)};
  sim.run_until(duration::seconds(3));
  r_src.send(target, routing::Proto::kApp, to_bytes("stuck"));
  sim.run_until(duration::seconds(5));
  EXPECT_EQ(r_src.local_minimum_drops(), 1u);
  EXPECT_EQ(r_src.stats().drops, 1u);
}

TEST(GeoRouting, MissingDestinationPositionDrops) {
  GeoGrid grid{4};
  grid.geo(0).set_position_resolver([](NodeId) { return std::nullopt; });
  grid.router(0).send(grid.nodes[3], routing::Proto::kApp, to_bytes("x"));
  grid.sim.run_until(duration::seconds(1));
  EXPECT_EQ(grid.geo(0).stats().drops, 1u);
}

TEST(GeoRouting, StaleNeighborsExpire) {
  GeoGrid grid{4};
  EXPECT_GE(grid.geo(0).known_neighbors(), 2u);
  grid.world.kill(grid.nodes[1]);
  grid.world.kill(grid.nodes[2]);
  grid.sim.run_until(duration::seconds(10));
  // Entries persist but are ignored once past the TTL: a send toward a
  // dead-neighbour direction hits the local-minimum path.
  grid.router(0).send(grid.nodes[3], routing::Proto::kApp, to_bytes("x"));
  grid.sim.run_until(duration::seconds(12));
  EXPECT_GE(grid.geo(0).stats().drops, 1u);
}

TEST(GeoRouting, FloodStillWorks) {
  GeoGrid grid{9};
  int received = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    grid.router(i).set_delivery_handler(routing::Proto::kApp,
                                        [&](NodeId, const Bytes&) { received++; });
  }
  grid.router(4).flood(routing::Proto::kApp, to_bytes("all"));
  grid.sim.run_until(duration::seconds(5));
  EXPECT_EQ(received, 9);
}

TEST(Handoff, SessionMovesAndAcknowledges) {
  Lan lan{3};
  scheduling::HandoffManager a{lan.transport(0)};
  scheduling::HandoffManager b{lan.transport(1)};

  std::string state_at_b;
  b.register_session_type("counter", [&](NodeId from, const Bytes& state) {
    EXPECT_EQ(from, lan.nodes[0]);
    state_at_b = to_string(state);
    return Status::ok();
  });

  Status result{ErrorCode::kInternal, ""};
  a.handoff("counter", to_bytes("count=41"), lan.nodes[1],
            [&](Status s) { result = s; });
  lan.sim.run_until(duration::seconds(2));
  EXPECT_TRUE(result.is_ok());
  EXPECT_EQ(state_at_b, "count=41");
  EXPECT_EQ(a.stats().completed, 1u);
  EXPECT_EQ(b.stats().received, 1u);
}

TEST(Handoff, UnknownTypeRejected) {
  Lan lan{2};
  scheduling::HandoffManager a{lan.transport(0)};
  scheduling::HandoffManager b{lan.transport(1)};
  Status result;
  a.handoff("unregistered", to_bytes("s"), lan.nodes[1], [&](Status s) { result = s; });
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(result.code(), ErrorCode::kRejected);
  EXPECT_EQ(b.stats().rejected, 1u);
  EXPECT_EQ(a.stats().failed, 1u);
}

TEST(Handoff, HandlerCanRefuse) {
  Lan lan{2};
  scheduling::HandoffManager a{lan.transport(0)};
  scheduling::HandoffManager b{lan.transport(1)};
  b.register_session_type("busy", [](NodeId, const Bytes&) {
    return Status{ErrorCode::kResourceExhausted, "node overloaded"};
  });
  Status result;
  a.handoff("busy", to_bytes("s"), lan.nodes[1], [&](Status s) { result = s; });
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(result.code(), ErrorCode::kRejected);
  EXPECT_EQ(result.message(), "node overloaded");
}

TEST(Handoff, TimeoutWhenTargetDead) {
  Lan lan{2};
  scheduling::HandoffManager a{lan.transport(0)};
  lan.world.kill(lan.nodes[1]);
  Status result;
  a.handoff("counter", to_bytes("s"), lan.nodes[1], [&](Status s) { result = s; },
            duration::seconds(1));
  lan.sim.run_until(duration::seconds(3));
  EXPECT_EQ(result.code(), ErrorCode::kTimeout);
  // The source still owns the session (completed == 0).
  EXPECT_EQ(a.stats().completed, 0u);
}

TEST(Handoff, ChainAcrossThreeNodes) {
  // A counter session hops 0 -> 1 -> 2, incremented at each stop.
  Lan lan{3};
  std::vector<std::unique_ptr<scheduling::HandoffManager>> managers;
  for (int i = 0; i < 3; ++i) {
    managers.push_back(std::make_unique<scheduling::HandoffManager>(
        lan.transport(static_cast<std::size_t>(i))));
  }
  int final_count = -1;
  auto parse = [](const Bytes& b) { return std::stoi(to_string(b)); };

  managers[1]->register_session_type("counter", [&](NodeId, const Bytes& state) {
    const int count = parse(state) + 1;
    managers[1]->handoff("counter", to_bytes(std::to_string(count)), lan.nodes[2],
                         [](Status) {});
    return Status::ok();
  });
  managers[2]->register_session_type("counter", [&](NodeId, const Bytes& state) {
    final_count = parse(state) + 1;
    return Status::ok();
  });
  managers[0]->handoff("counter", to_bytes("0"), lan.nodes[1], [](Status) {});
  lan.sim.run_until(duration::seconds(3));
  EXPECT_EQ(final_count, 2);
}

TEST(Handoff, LargeStateSurvivesFragmentation) {
  // Session state far above the 96 B fragment size crosses intact.
  Lan lan{2};
  scheduling::HandoffManager a{lan.transport(0)};
  scheduling::HandoffManager b{lan.transport(1)};
  Bytes state(5000);
  for (std::size_t i = 0; i < state.size(); ++i) {
    state[i] = static_cast<std::uint8_t>(i * 13);
  }
  Bytes received;
  b.register_session_type("blob", [&](NodeId, const Bytes& s) {
    received = s;
    return Status::ok();
  });
  Status result;
  a.handoff("blob", state, lan.nodes[1], [&](Status s) { result = s; });
  lan.sim.run_until(duration::seconds(5));
  EXPECT_TRUE(result.is_ok());
  EXPECT_EQ(received, state);
}

TEST(Handoff, ConcurrentTransfersIndependent) {
  Lan lan{3};
  scheduling::HandoffManager a{lan.transport(0)};
  scheduling::HandoffManager b{lan.transport(1)};
  scheduling::HandoffManager c{lan.transport(2)};
  std::string at_b;
  std::string at_c;
  b.register_session_type("s", [&](NodeId, const Bytes& st) {
    at_b = to_string(st);
    return Status::ok();
  });
  c.register_session_type("s", [&](NodeId, const Bytes& st) {
    at_c = to_string(st);
    return Status::ok();
  });
  int completed = 0;
  a.handoff("s", to_bytes("for-b"), lan.nodes[1], [&](Status s) { completed += s.is_ok(); });
  a.handoff("s", to_bytes("for-c"), lan.nodes[2], [&](Status s) { completed += s.is_ok(); });
  lan.sim.run_until(duration::seconds(3));
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(at_b, "for-b");
  EXPECT_EQ(at_c, "for-c");
}

TEST(MilanEvents, EngineEmitsPlanAndStateEvents) {
  WirelessGrid grid{9, 20.0, 42, 1e9};
  auto table = std::make_shared<routing::GlobalRoutingTable>(grid.world,
                                                             routing::Metric::kHopCount);
  grid.with_routers<routing::GlobalRouter>(table);
  transactions::EventChannel channel{grid.transport(0)};

  std::vector<milan::Component> sensors;
  for (std::uint64_t i = 1; i <= 2; ++i) {
    milan::Component c;
    c.id = ComponentId{i};
    c.node = grid.nodes[i * 3];
    c.qos["temp"] = 0.9;
    c.sample_power_w = 0.0001;
    sensors.push_back(std::move(c));
  }
  milan::ApplicationSpec app;
  app.variables = {"temp"};
  app.states["low"] = {{"temp", 0.5}};
  app.states["high"] = {{"temp", 0.95}};
  app.initial_state = "low";

  milan::MilanEngine engine{grid.world, grid.nodes[0], table,
                            [&](NodeId n) { return node::router_of(grid.runtimes, n); },
                            app, sensors};
  engine.set_event_channel(&channel);

  std::vector<std::string> events;
  channel.subscribe_local("", [&](const transactions::Event& e) {
    events.push_back(e.type);
  });

  engine.start();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back(), "milan.plan");

  engine.set_state("high");
  // "high" needs 0.95; two 0.9 sensors give 0.99 -> feasible, plan event.
  EXPECT_NE(std::find(events.begin(), events.end(), "milan.state"), events.end());

  // Kill both sensors: infeasible event.
  grid.world.kill(grid.nodes[3]);
  grid.world.kill(grid.nodes[6]);
  grid.sim.run_until(duration::seconds(2));
  EXPECT_NE(std::find(events.begin(), events.end(), "milan.infeasible"), events.end());
}

TEST(MilanEvents, PlanPayloadCarriesSummary) {
  WirelessGrid grid{4, 20.0, 42, 1e9};
  auto table = std::make_shared<routing::GlobalRoutingTable>(grid.world,
                                                             routing::Metric::kHopCount);
  grid.with_routers<routing::GlobalRouter>(table);
  transactions::EventChannel channel{grid.transport(0)};

  milan::Component c;
  c.id = ComponentId{1};
  c.node = grid.nodes[3];
  c.qos["temp"] = 0.9;
  milan::ApplicationSpec app;
  app.variables = {"temp"};
  app.states["on"] = {{"temp", 0.8}};
  app.initial_state = "on";
  milan::MilanEngine engine{grid.world, grid.nodes[0], table,
                            [&](NodeId n) { return node::router_of(grid.runtimes, n); },
                            app, {c}};
  engine.set_event_channel(&channel);
  Value payload;
  channel.subscribe_local("milan.plan",
                          [&](const transactions::Event& e) { payload = e.payload; });
  engine.start();
  ASSERT_EQ(payload.type(), Value::Type::kMap);
  EXPECT_EQ(payload.as_map().at("feasible"), Value{true});
  EXPECT_EQ(payload.as_map().at("active"), Value{1});
  EXPECT_EQ(payload.as_map().at("state"), Value{"on"});
}

}  // namespace
}  // namespace ndsm
