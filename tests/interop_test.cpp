#include <gtest/gtest.h>

#include "interop/markup.hpp"
#include "interop/value_markup.hpp"

namespace ndsm::interop {
namespace {

using serialize::Value;
using serialize::ValueList;
using serialize::ValueMap;

TEST(Markup, ParseSimpleElement) {
  auto r = parse_markup("<service type=\"printer\"/>");
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().tag, "service");
  EXPECT_EQ(r.value().attribute("type"), "printer");
  EXPECT_TRUE(r.value().children.empty());
}

TEST(Markup, ParseNestedChildren) {
  auto r = parse_markup("<a><b x=\"1\"/><b x=\"2\"/><c>text</c></a>");
  ASSERT_TRUE(r.is_ok());
  const auto& root = r.value();
  EXPECT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children_named("b").size(), 2u);
  ASSERT_NE(root.child("c"), nullptr);
  EXPECT_EQ(root.child("c")->text, "text");
}

TEST(Markup, SingleQuotedAttributes) {
  auto r = parse_markup("<a k='v'/>");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().attribute("k"), "v");
}

TEST(Markup, EscapingRoundTrip) {
  MarkupNode node;
  node.tag = "t";
  node.set_attribute("attr", "a<b&c\"d'e>f");
  node.text = "x < y && z > \"w\"";
  const std::string text = write_markup(node);
  auto r = parse_markup(text);
  ASSERT_TRUE(r.is_ok()) << text;
  EXPECT_EQ(r.value().attribute("attr"), "a<b&c\"d'e>f");
  EXPECT_EQ(r.value().text, "x < y && z > \"w\"");
}

TEST(Markup, EscapeAndUnescape) {
  EXPECT_EQ(escape_text("<&>"), "&lt;&amp;&gt;");
  EXPECT_EQ(unescape_text("&lt;&amp;&gt;&quot;&apos;"), "<&>\"'");
  EXPECT_EQ(unescape_text("a&unknown;b"), "a&unknown;b");
}

TEST(Markup, RejectsMismatchedClose) {
  EXPECT_FALSE(parse_markup("<a><b></a></b>").is_ok());
}

TEST(Markup, RejectsTrailingContent) {
  EXPECT_FALSE(parse_markup("<a/><b/>").is_ok());
}

TEST(Markup, RejectsUnterminated) {
  EXPECT_FALSE(parse_markup("<a><b>").is_ok());
  EXPECT_FALSE(parse_markup("<a attr=\"x").is_ok());
  EXPECT_FALSE(parse_markup("<").is_ok());
  EXPECT_FALSE(parse_markup("").is_ok());
}

TEST(Markup, ErrorsCarryOffset) {
  auto r = parse_markup("<a><b></wrong></a>");
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(Markup, WriteIsStable) {
  MarkupNode node;
  node.tag = "root";
  node.add_child("child").set_attribute("k", "v");
  const std::string a = write_markup(node);
  const std::string b = write_markup(node);
  EXPECT_EQ(a, b);
  // Compact mode emits no newlines.
  const std::string compact = write_markup(node, -1);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
}

TEST(Markup, DeepNestingRoundTrip) {
  MarkupNode node;
  node.tag = "n0";
  MarkupNode* cur = &node;
  for (int i = 1; i < 30; ++i) cur = &cur->add_child("n" + std::to_string(i));
  cur->text = "deep";
  auto r = parse_markup(write_markup(node));
  ASSERT_TRUE(r.is_ok());
  const MarkupNode* walker = &r.value();
  for (int i = 1; i < 30; ++i) {
    ASSERT_EQ(walker->children.size(), 1u);
    walker = &walker->children[0];
  }
  EXPECT_EQ(walker->text, "deep");
}

TEST(ValueMarkup, ScalarsRoundTrip) {
  const std::vector<Value> values = {Value{}, Value{true}, Value{std::int64_t{-7}},
                                     Value{2.25}, Value{"text & more"},
                                     Value{Bytes{0xde, 0xad}}};
  for (const auto& v : values) {
    const MarkupNode node = value_to_markup(v);
    auto decoded = markup_to_value(node);
    ASSERT_TRUE(decoded.is_ok()) << v.to_string();
    EXPECT_EQ(decoded.value(), v) << write_markup(node);
  }
}

TEST(ValueMarkup, ContainersRoundTrip) {
  const Value v{ValueMap{
      {"list", Value{ValueList{Value{1}, Value{"two"}}}},
      {"scalar", Value{9.5}},
  }};
  auto decoded = markup_to_value(value_to_markup(v));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), v);
}

TEST(ValueMarkup, FullTextualRoundTrip) {
  // Value -> markup -> text -> markup -> Value.
  const Value v{ValueList{Value{"reading"}, Value{37}, Value{36.6}}};
  const std::string text = write_markup(value_to_markup(v));
  auto tree = parse_markup(text);
  ASSERT_TRUE(tree.is_ok());
  auto decoded = markup_to_value(tree.value());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), v);
}

TEST(ValueMarkup, BadLiteralsRejected) {
  MarkupNode node;
  node.tag = "value";
  node.set_attribute("type", "int");
  node.text = "not-a-number";
  EXPECT_FALSE(markup_to_value(node).is_ok());
  node.set_attribute("type", "bytes");
  node.text = "xyz";  // bad hex
  EXPECT_FALSE(markup_to_value(node).is_ok());
  node.set_attribute("type", "no-such-type");
  EXPECT_FALSE(markup_to_value(node).is_ok());
}

}  // namespace
}  // namespace ndsm::interop
