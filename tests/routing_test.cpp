#include <gtest/gtest.h>

#include "net/faults.hpp"
#include "routing/distance_vector.hpp"
#include "routing/flooding.hpp"
#include "routing/geographic.hpp"
#include "routing/global.hpp"
#include "routing/location.hpp"
#include "test_helpers.hpp"

namespace ndsm::routing {
namespace {

using testing::WirelessGrid;

TEST(RoutingHeader, CodecRoundTrip) {
  RoutingHeader h;
  h.kind = RoutingKind::kData;
  h.origin = NodeId{3};
  h.dst = NodeId{9};
  h.seq = 12345;
  h.ttl = 7;
  h.upper = Proto::kDiscovery;
  const Bytes payload = to_bytes("payload");
  const Bytes frame = encode_routing(h, payload);

  RoutingHeader out;
  Bytes out_payload;
  ASSERT_TRUE(decode_routing(frame, out, out_payload));
  EXPECT_EQ(out.kind, h.kind);
  EXPECT_EQ(out.origin, h.origin);
  EXPECT_EQ(out.dst, h.dst);
  EXPECT_EQ(out.seq, h.seq);
  EXPECT_EQ(out.ttl, h.ttl);
  EXPECT_EQ(out.upper, h.upper);
  EXPECT_EQ(out_payload, payload);
}

TEST(RoutingHeader, CorruptFrameRejected) {
  RoutingHeader h;
  Bytes payload;
  EXPECT_FALSE(decode_routing(Bytes{1, 2, 3}, h, payload));
  EXPECT_FALSE(decode_routing(Bytes{}, h, payload));
}

TEST(Flooding, MultiHopDelivery) {
  WirelessGrid grid{9};  // 3x3, range covers one hop
  grid.with_routers<FloodingRouter>();
  Bytes got;
  NodeId origin;
  grid.router(8).set_delivery_handler(Proto::kApp, [&](NodeId o, const Bytes& b) {
    got = b;
    origin = o;
  });
  // Corner to opposite corner: needs >= 4 hops.
  ASSERT_TRUE(grid.router(0).send(grid.nodes[8], Proto::kApp, to_bytes("across")).is_ok());
  grid.sim.run_until(duration::seconds(1));
  EXPECT_EQ(to_string(got), "across");
  EXPECT_EQ(origin, grid.nodes[0]);
}

TEST(Flooding, FloodReachesEveryone) {
  WirelessGrid grid{16};
  grid.with_routers<FloodingRouter>();
  int received = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    grid.router(i).set_delivery_handler(Proto::kApp,
                                        [&](NodeId, const Bytes&) { received++; });
  }
  ASSERT_TRUE(grid.router(5).flood(Proto::kApp, to_bytes("all")).is_ok());
  grid.sim.run_until(duration::seconds(1));
  EXPECT_EQ(received, 16);  // including the originator
}

TEST(Flooding, DuplicatesSuppressed) {
  WirelessGrid grid{9};
  grid.with_routers<FloodingRouter>();
  int deliveries = 0;
  grid.router(4).set_delivery_handler(Proto::kApp,
                                      [&](NodeId, const Bytes&) { deliveries++; });
  ASSERT_TRUE(grid.router(0).flood(Proto::kApp, to_bytes("x")).is_ok());
  grid.sim.run_until(duration::seconds(1));
  EXPECT_EQ(deliveries, 1);  // many paths, one delivery
}

TEST(Flooding, TtlLimitsPropagation) {
  // A 1x9 line: TTL 2 reaches only nodes 1..3 hops... TTL counts rebroadcasts.
  WirelessGrid grid{9, 20.0};
  // Re-position into a line.
  for (std::size_t i = 0; i < 9; ++i) {
    grid.world.set_position(grid.nodes[i], Vec2{static_cast<double>(i) * 20.0, 0});
  }
  grid.with_routers<FloodingRouter>();
  std::vector<int> got(9, 0);
  for (std::size_t i = 0; i < 9; ++i) {
    grid.router(i).set_delivery_handler(Proto::kApp,
                                        [&got, i](NodeId, const Bytes&) { got[i]++; });
  }
  ASSERT_TRUE(grid.router(0).flood(Proto::kApp, to_bytes("x"), /*ttl=*/2).is_ok());
  grid.sim.run_until(duration::seconds(1));
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 1);
  EXPECT_EQ(got[3], 1);  // delivered by node 2's last rebroadcast (ttl hit 0)
  EXPECT_EQ(got[4], 0);
}

TEST(Flooding, UnicastStopsAtTarget) {
  WirelessGrid grid{9};
  for (std::size_t i = 0; i < 9; ++i) {
    grid.world.set_position(grid.nodes[i], Vec2{static_cast<double>(i) * 20.0, 0});
  }
  grid.with_routers<FloodingRouter>();
  int target_got = 0;
  int beyond_got = 0;
  grid.router(3).set_delivery_handler(Proto::kApp,
                                      [&](NodeId, const Bytes&) { target_got++; });
  grid.router(5).set_delivery_handler(Proto::kApp,
                                      [&](NodeId, const Bytes&) { beyond_got++; });
  ASSERT_TRUE(grid.router(0).send(grid.nodes[3], Proto::kApp, to_bytes("x")).is_ok());
  grid.sim.run_until(duration::seconds(1));
  EXPECT_EQ(target_got, 1);
  EXPECT_EQ(beyond_got, 0);  // flood not forwarded past its unicast target
}

struct DvGrid : WirelessGrid {
  explicit DvGrid(std::size_t n) : WirelessGrid(n) {
    with_routers<DistanceVectorRouter>(duration::seconds(1));
  }
  DistanceVectorRouter& dv(std::size_t i) {
    return static_cast<DistanceVectorRouter&>(router(i));
  }
};

TEST(DistanceVector, ConvergesToAllDestinations) {
  DvGrid grid{9};
  grid.sim.run_until(duration::seconds(10));
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_LT(grid.dv(i).route_metric(grid.nodes[j]), DistanceVectorRouter::kInfinity)
          << i << "->" << j;
    }
  }
}

TEST(DistanceVector, MetricsAreShortestHopCounts) {
  DvGrid grid{9};  // 3x3 lattice, spacing 20, range 30 (diagonals out of range)
  grid.sim.run_until(duration::seconds(10));
  EXPECT_EQ(grid.dv(0).route_metric(grid.nodes[0]), 0);
  EXPECT_EQ(grid.dv(0).route_metric(grid.nodes[1]), 1);
  EXPECT_EQ(grid.dv(0).route_metric(grid.nodes[4]), 2);  // corner to centre
  EXPECT_EQ(grid.dv(0).route_metric(grid.nodes[8]), 4);  // corner to corner
}

TEST(DistanceVector, DataFollowsRoutes) {
  DvGrid grid{9};
  grid.sim.run_until(duration::seconds(10));
  Bytes got;
  grid.router(8).set_delivery_handler(Proto::kApp, [&](NodeId, const Bytes& b) { got = b; });
  ASSERT_TRUE(grid.router(0).send(grid.nodes[8], Proto::kApp, to_bytes("dv")).is_ok());
  grid.sim.run_until(duration::seconds(11));
  EXPECT_EQ(to_string(got), "dv");
}

TEST(DistanceVector, RoutesExpireAfterDeath) {
  DvGrid grid{4};  // 2x2
  grid.sim.run_until(duration::seconds(10));
  EXPECT_LT(grid.dv(0).route_metric(grid.nodes[3]), DistanceVectorRouter::kInfinity);
  grid.world.kill(grid.nodes[3]);
  grid.sim.run_until(duration::seconds(20));
  EXPECT_EQ(grid.dv(0).route_metric(grid.nodes[3]), DistanceVectorRouter::kInfinity);
}

TEST(DistanceVector, ReroutesAroundFailure) {
  DvGrid grid{9};
  grid.sim.run_until(duration::seconds(10));
  // Kill the centre; corner-to-corner still works around the edge.
  grid.world.kill(grid.nodes[4]);
  grid.sim.run_until(duration::seconds(25));  // let tables re-converge
  Bytes got;
  grid.router(8).set_delivery_handler(Proto::kApp, [&](NodeId, const Bytes& b) { got = b; });
  ASSERT_TRUE(grid.router(0).send(grid.nodes[8], Proto::kApp, to_bytes("detour")).is_ok());
  grid.sim.run_until(duration::seconds(26));
  EXPECT_EQ(to_string(got), "detour");
}

TEST(DistanceVector, FloodWorksWithoutConvergence) {
  DvGrid grid{9};
  int received = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    grid.router(i).set_delivery_handler(Proto::kApp,
                                        [&](NodeId, const Bytes&) { received++; });
  }
  // Flood immediately at t=0, before any DV updates.
  ASSERT_TRUE(grid.router(0).flood(Proto::kApp, to_bytes("early")).is_ok());
  grid.sim.run_until(duration::seconds(1));
  EXPECT_EQ(received, 9);
}

struct GlobalGrid : WirelessGrid {
  explicit GlobalGrid(std::size_t n, Metric metric = Metric::kHopCount)
      : WirelessGrid(n, 20.0, 42, 10.0) {
    table = std::make_shared<GlobalRoutingTable>(world, metric);
    with_routers<GlobalRouter>(table);
  }
  std::shared_ptr<GlobalRoutingTable> table;
};

TEST(GlobalRouting, ImmediateMultiHopDelivery) {
  GlobalGrid grid{16};
  Bytes got;
  grid.router(15).set_delivery_handler(Proto::kApp, [&](NodeId, const Bytes& b) { got = b; });
  ASSERT_TRUE(grid.router(0).send(grid.nodes[15], Proto::kApp, to_bytes("go")).is_ok());
  grid.sim.run_until(duration::seconds(1));
  EXPECT_EQ(to_string(got), "go");
}

TEST(GlobalRouting, HopCountPathCosts) {
  GlobalGrid grid{9};
  EXPECT_DOUBLE_EQ(grid.table->path_cost(grid.nodes[0], grid.nodes[0]), 0.0);
  EXPECT_DOUBLE_EQ(grid.table->path_cost(grid.nodes[0], grid.nodes[1]), 1.0);
  EXPECT_DOUBLE_EQ(grid.table->path_cost(grid.nodes[0], grid.nodes[8]), 4.0);
}

TEST(GlobalRouting, UnreachableReported) {
  GlobalGrid grid{4};
  // Add an isolated node far away.
  const NodeId isolated = grid.world.add_node({10000, 10000});
  grid.world.attach(isolated, grid.medium);
  EXPECT_FALSE(grid.table->reachable(grid.nodes[0], isolated));
  EXPECT_EQ(grid.router(0).send(isolated, Proto::kApp, {}).code(), ErrorCode::kUnreachable);
}

TEST(GlobalRouting, EnergyAwareAvoidsLowBatteryRelay) {
  // Line topology a - r1 - b and a - r2 - b with r1 nearly dead: energy
  // metric must route through r2.
  sim::Simulator sim{1};
  net::World world{sim};
  const MediumId m = world.add_medium(net::wifi80211(25, 0));
  const NodeId a = world.add_node({0, 0}, net::Battery{10});
  const NodeId r1 = world.add_node({20, 10}, net::Battery{10});
  const NodeId r2 = world.add_node({20, -10}, net::Battery{10});
  const NodeId b = world.add_node({40, 0}, net::Battery{10});
  for (const NodeId n : {a, r1, r2, b}) world.attach(n, m);
  // Drain r1 to 5% without killing it.
  world.drain(r1, 9.5);

  auto table = std::make_shared<GlobalRoutingTable>(world, Metric::kEnergyAware);
  EXPECT_EQ(table->next_hop(a, b), r2);
  table->set_metric(Metric::kHopCount);
  // Hop count is indifferent (both 2 hops) — either relay acceptable.
  const NodeId hop = table->next_hop(a, b);
  EXPECT_TRUE(hop == r1 || hop == r2);
}

TEST(GlobalRouting, InvalidateRecomputesAfterDeath) {
  GlobalGrid grid{9};
  const NodeId via = grid.table->next_hop(grid.nodes[0], grid.nodes[8]);
  EXPECT_TRUE(via.valid());
  grid.world.kill(via);
  grid.table->invalidate();
  const NodeId via2 = grid.table->next_hop(grid.nodes[0], grid.nodes[8]);
  EXPECT_TRUE(via2.valid());
  EXPECT_NE(via2, via);
}

TEST(GlobalRouting, CachesUntilRefreshInterval) {
  GlobalGrid grid{9};
  (void)grid.table->next_hop(grid.nodes[0], grid.nodes[8]);
  const auto before = grid.table->recomputations();
  (void)grid.table->next_hop(grid.nodes[0], grid.nodes[5]);
  (void)grid.table->path_cost(grid.nodes[0], grid.nodes[3]);
  EXPECT_EQ(grid.table->recomputations(), before);  // same source, cached
  grid.sim.run_until(duration::seconds(60));        // past refresh interval
  (void)grid.table->next_hop(grid.nodes[0], grid.nodes[8]);
  EXPECT_GT(grid.table->recomputations(), before);
}

TEST(LocationService, BeaconsPopulateCaches) {
  GlobalGrid grid{9};
  std::vector<std::unique_ptr<LocationService>> locs;
  for (std::size_t i = 0; i < 9; ++i) {
    locs.push_back(std::make_unique<LocationService>(grid.router(i), duration::seconds(2)));
  }
  grid.sim.run_until(duration::seconds(5));
  // Everyone knows everyone.
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(locs[i]->known_count(), 9u) << i;
    const auto pos = locs[i]->lookup(grid.nodes[8]);
    ASSERT_TRUE(pos.has_value());
    EXPECT_EQ(*pos, grid.world.position(grid.nodes[8]));
  }
}

TEST(LocationService, MaxAgeFiltersStaleEntries) {
  GlobalGrid grid{4};
  LocationService loc0{grid.router(0), duration::seconds(2)};
  LocationService loc1{grid.router(1), duration::seconds(2)};
  grid.sim.run_until(duration::seconds(3));
  ASSERT_TRUE(loc0.lookup(grid.nodes[1]).has_value());
  grid.world.kill(grid.nodes[1]);  // no more beacons
  grid.sim.run_until(duration::seconds(30));
  EXPECT_FALSE(loc0.lookup(grid.nodes[1], duration::seconds(5)).has_value());
  EXPECT_TRUE(loc0.lookup(grid.nodes[1]).has_value());  // unlimited age still returns it
}

TEST(LocationService, TracksMovingNode) {
  GlobalGrid grid{4};
  LocationService loc0{grid.router(0), duration::seconds(1)};
  LocationService loc1{grid.router(1), duration::seconds(1)};
  grid.sim.run_until(duration::seconds(2));
  grid.world.move_linear(grid.nodes[1], Vec2{30, 0}, 5.0);
  grid.sim.run_until(duration::seconds(10));
  const auto pos = loc0.lookup(grid.nodes[1], duration::seconds(2));
  ASSERT_TRUE(pos.has_value());
  EXPECT_NEAR(pos->x, 30.0, 6.0);  // within one beacon period of truth
}

TEST(RouterStats, CountsSentAndForwarded) {
  GlobalGrid grid{9};
  grid.router(8).set_delivery_handler(Proto::kApp, [](NodeId, const Bytes&) {});
  ASSERT_TRUE(grid.router(0).send(grid.nodes[8], Proto::kApp, to_bytes("x")).is_ok());
  grid.sim.run_until(duration::seconds(1));
  EXPECT_EQ(grid.router(0).stats().data_sent, 1u);
  EXPECT_EQ(grid.router(8).stats().data_delivered, 1u);
  // 4-hop path => 3 intermediate forwards in total.
  std::uint64_t forwards = 0;
  for (std::size_t i = 0; i < 9; ++i) forwards += grid.router(i).stats().data_forwarded;
  EXPECT_EQ(forwards, 3u);
}

// --- partition/heal coverage (driven by the net::FaultPlan layer) -----------

TEST(DistanceVector, PartitionExpiresRoutesAndHealReconverges) {
  DvGrid grid{9};
  net::FaultPlan faults{grid.world};
  grid.sim.run_until(duration::seconds(10));
  ASSERT_LT(grid.dv(0).route_metric(grid.nodes[8]), DistanceVectorRouter::kInfinity);

  // Split off the left column for 15s, starting now. Route TTL at 1s
  // updates is 3.5s, so cross-partition routes age out well within it.
  faults.partition(0, {grid.nodes[0], grid.nodes[3], grid.nodes[6]}, duration::seconds(15));
  grid.sim.run_until(duration::seconds(20));
  EXPECT_GT(faults.stats().partition_drops, 0u);
  EXPECT_EQ(faults.active_partitions(), 1u);
  EXPECT_EQ(grid.dv(0).route_metric(grid.nodes[8]), DistanceVectorRouter::kInfinity);
  EXPECT_LT(grid.dv(0).route_metric(grid.nodes[6]), DistanceVectorRouter::kInfinity)
      << "routes inside the island must survive the partition";

  // Undeliverable sends during the outage surface in routing.* stats.
  const std::uint64_t drops_before = grid.dv(0).stats().drops;
  ASSERT_TRUE(grid.router(0).send(grid.nodes[8], Proto::kApp, to_bytes("void")).is_ok());
  grid.sim.run_until(duration::seconds(21));
  EXPECT_GT(grid.dv(0).stats().drops, drops_before);

  // Heal fired at t=25s; tables re-converge and data flows again.
  grid.sim.run_until(duration::seconds(40));
  EXPECT_EQ(faults.active_partitions(), 0u);
  EXPECT_EQ(faults.stats().partitions_healed, 1u);
  EXPECT_LT(grid.dv(0).route_metric(grid.nodes[8]), DistanceVectorRouter::kInfinity);
  Bytes got;
  grid.router(8).set_delivery_handler(Proto::kApp, [&](NodeId, const Bytes& b) { got = b; });
  ASSERT_TRUE(grid.router(0).send(grid.nodes[8], Proto::kApp, to_bytes("healed")).is_ok());
  grid.sim.run_until(duration::seconds(41));
  EXPECT_EQ(to_string(got), "healed");
}

TEST(GeoRouting, PartitionBlocksGreedyForwardingUntilHeal) {
  WirelessGrid grid{9};
  grid.with_routers<GeoRouter>(duration::seconds(1));
  net::FaultPlan faults{grid.world};
  grid.sim.run_until(duration::seconds(3));  // hello beacons populate tables

  Bytes got;
  grid.router(8).set_delivery_handler(Proto::kApp, [&](NodeId, const Bytes& b) { got = b; });

  // Island the far corner's row for 10s: hellos across the cut stop, the
  // sender's candidates toward node 8 go stale, and greedy forwarding has
  // no live next hop past the cut.
  faults.partition(0, {grid.nodes[6], grid.nodes[7], grid.nodes[8]}, duration::seconds(10));
  grid.sim.run_until(duration::seconds(8));  // stale out cross-cut neighbors (ttl 3.3s)
  const std::uint64_t drops_before =
      grid.router(3).stats().drops + grid.router(4).stats().drops +
      grid.router(5).stats().drops + grid.router(0).stats().drops;
  ASSERT_TRUE(grid.router(0).send(grid.nodes[8], Proto::kApp, to_bytes("cut")).is_ok());
  grid.sim.run_until(duration::seconds(9));
  EXPECT_TRUE(got.empty()) << "frame crossed an active partition";
  const std::uint64_t drops_after =
      grid.router(3).stats().drops + grid.router(4).stats().drops +
      grid.router(5).stats().drops + grid.router(0).stats().drops;
  EXPECT_GT(drops_after, drops_before)
      << "the outage must surface in routing.* drop counters";
  EXPECT_GT(faults.stats().partition_drops, 0u);

  // After the heal, beacons re-cross the cut and delivery resumes.
  grid.sim.run_until(duration::seconds(18));  // heal at 10s + re-beacon slack
  ASSERT_TRUE(grid.router(0).send(grid.nodes[8], Proto::kApp, to_bytes("rejoined")).is_ok());
  grid.sim.run_until(duration::seconds(20));
  EXPECT_EQ(to_string(got), "rejoined");
  EXPECT_EQ(faults.stats().partitions_healed, 1u);
}

}  // namespace
}  // namespace ndsm::routing
