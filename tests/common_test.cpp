#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/time.hpp"
#include "common/vec2.hpp"

namespace ndsm {
namespace {

TEST(Ids, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(Ids, ComparisonAndHash) {
  const NodeId a{1};
  const NodeId b{2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, NodeId{1});
  std::unordered_set<NodeId> set{a, b, a};
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, GeneratorIsMonotonic) {
  IdGenerator<ServiceId> gen;
  const ServiceId first = gen.next();
  const ServiceId second = gen.next();
  EXPECT_LT(first, second);
  EXPECT_TRUE(first.valid());
}

TEST(Ids, StrongTypingDistinctTags) {
  // NodeId and ServiceId with equal values are different types; this is a
  // compile-time property, but verify value access anyway.
  EXPECT_EQ(NodeId{7}.value(), ServiceId{7}.value());
}

TEST(Time, DurationHelpers) {
  EXPECT_EQ(duration::millis(1), 1000);
  EXPECT_EQ(duration::seconds(1), 1000000);
  EXPECT_EQ(duration::minutes(2), 120 * 1000000LL);
  EXPECT_EQ(duration::hours(1), 3600 * 1000000LL);
  EXPECT_DOUBLE_EQ(to_seconds(duration::seconds(5)), 5.0);
  EXPECT_EQ(from_seconds(1.5), 1500000);
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
}

TEST(Status, ErrorCarriesMessage) {
  const Status s{ErrorCode::kTimeout, "too slow"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "TIMEOUT: too slow");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  const Result<int> r{42};
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  const Result<int> r{ErrorCode::kNotFound, "missing"};
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r{std::string{"hello"}};
  const std::string s = std::move(r).take();
  EXPECT_EQ(s, "hello");
}

TEST(Rng, Deterministic) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 10.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 10.0);
  }
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces observed
}

TEST(Rng, BernoulliExtremes) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanApprox) {
  Rng rng{11};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalMomentsApprox) {
  Rng rng{13};
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ForkIndependent) {
  Rng root{5};
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2};
  const Vec2 b{4, 6};
  EXPECT_EQ((a + b), (Vec2{5, 8}));
  EXPECT_EQ((b - a), (Vec2{3, 4}));
  EXPECT_DOUBLE_EQ((b - a).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_EQ((a * 2.0), (Vec2{2, 4}));
}

TEST(Bytes, StringRoundTrip) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, FnvIsStableAndDiscriminates) {
  EXPECT_EQ(fnv1a("password"), fnv1a("password"));
  EXPECT_NE(fnv1a("password"), fnv1a("Password"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

}  // namespace
}  // namespace ndsm
