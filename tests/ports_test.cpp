// transport::ports registry edge cases: the duplicate-bind hard-error
// path, receiver rebinding across Runtime::crash()/restart() cycles, and
// port release on stack teardown (a rebuilt transport starts with a clean
// port table, and services re-binding their well-known ports after a
// restart must not trip the duplicate-bind check).

#include "transport/ports.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "discovery/centralized.hpp"
#include "discovery/directory_server.hpp"
#include "test_helpers.hpp"

namespace ndsm {
namespace {

using testing::Lan;
using transport::ports::name;

TEST(PortsTest, WellKnownPortNamesAreStable) {
  EXPECT_STREQ(name(transport::ports::kDiscovery), "discovery");
  EXPECT_STREQ(name(transport::ports::kGossip), "gossip");
  EXPECT_STREQ(name(transport::ports::kApp), "app");
  // "app+N" dynamic ports and unknown values both read as unassigned.
  EXPECT_STREQ(name(transport::ports::kApp + 1), "unassigned");
  EXPECT_STREQ(name(12345), "unassigned");
}

TEST(PortsTest, DuplicateBindThrowsAndKeepsFirstReceiver) {
  Lan lan{2};
  int first_hits = 0;
  lan.transport(0).set_receiver(transport::ports::kApp,
                                [&](NodeId, const Bytes&) { first_hits++; });
  EXPECT_THROW(lan.transport(0).set_receiver(transport::ports::kApp,
                                             [](NodeId, const Bytes&) {}),
               std::logic_error);

  // The original receiver survives the rejected rebind.
  lan.transport(1).send(lan.nodes[0], transport::ports::kApp, to_bytes("ping"));
  lan.sim.run_until(lan.sim.now() + duration::seconds(2));
  EXPECT_EQ(first_hits, 1);
}

TEST(PortsTest, ClearReceiverAllowsIntentionalRebind) {
  Lan lan{2};
  lan.transport(0).set_receiver(transport::ports::kApp, [](NodeId, const Bytes&) {});
  lan.transport(0).clear_receiver(transport::ports::kApp);
  int second_hits = 0;
  EXPECT_NO_THROW(lan.transport(0).set_receiver(
      transport::ports::kApp, [&](NodeId, const Bytes&) { second_hits++; }));
  lan.transport(1).send(lan.nodes[0], transport::ports::kApp, to_bytes("ping"));
  lan.sim.run_until(lan.sim.now() + duration::seconds(2));
  EXPECT_EQ(second_hits, 1);
}

TEST(PortsTest, CrashReleasesPortsAndRestartCanRebind) {
  Lan lan{2};
  lan.transport(0).set_receiver(transport::ports::kApp, [](NodeId, const Bytes&) {});

  // Teardown destroys the transport and with it every binding; the
  // rebuilt stack's port table starts empty, so the same port binds
  // without clear_receiver.
  lan.runtime(0).crash();
  lan.runtime(0).restart();
  int hits = 0;
  EXPECT_NO_THROW(lan.transport(0).set_receiver(
      transport::ports::kApp, [&](NodeId, const Bytes&) { hits++; }));
  lan.transport(1).send(lan.nodes[0], transport::ports::kApp, to_bytes("after"));
  lan.sim.run_until(lan.sim.now() + duration::seconds(2));
  EXPECT_EQ(hits, 1);
}

TEST(PortsTest, ServicesRebindTheirPortsAcrossRestartCycles) {
  // DirectoryServer binds kDiscovery, CentralizedDiscovery binds
  // kDiscoveryReplyCent — both inside service factories that the Runtime
  // re-runs on every restart. Two crash/restart cycles must neither
  // throw (ports properly released) nor lose the bindings (lookups still
  // answered afterwards).
  Lan lan{3};
  lan.runtime(0).emplace_service<discovery::DirectoryServer>("directory");
  auto make_disc = [&](std::size_t i) -> discovery::CentralizedDiscovery& {
    return lan.runtime(i).emplace_service<discovery::CentralizedDiscovery>(
        "discovery", std::vector<NodeId>{lan.nodes[0]});
  };
  make_disc(1);
  make_disc(2);

  qos::SupplierQos printer;
  printer.service_type = "printer";
  lan.runtime(1).service<discovery::CentralizedDiscovery>("discovery")->register_service(
      printer, duration::seconds(300));
  lan.sim.run_until(lan.sim.now() + duration::seconds(1));

  for (int cycle = 0; cycle < 2; ++cycle) {
    EXPECT_NO_THROW({
      lan.runtime(2).crash();
      lan.sim.run_until(lan.sim.now() + duration::millis(200));
      lan.runtime(2).restart();
      lan.sim.run_until(lan.sim.now() + duration::millis(200));
    });
  }

  std::vector<discovery::ServiceRecord> found;
  qos::ConsumerQos want;
  want.service_type = "printer";
  lan.runtime(2).service<discovery::CentralizedDiscovery>("discovery")->query(
      want, [&](std::vector<discovery::ServiceRecord> records) { found = std::move(records); },
      8, duration::seconds(2));
  lan.sim.run_until(lan.sim.now() + duration::seconds(3));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].provider, lan.nodes[1]);
}

TEST(PortsTest, DuplicateBindAfterRestartStillThrows) {
  // The duplicate-bind check is live on the rebuilt transport too, not
  // just the first incarnation.
  Lan lan{1};
  lan.runtime(0).crash();
  lan.runtime(0).restart();
  lan.transport(0).set_receiver(transport::ports::kRpc, [](NodeId, const Bytes&) {});
  EXPECT_THROW(lan.transport(0).set_receiver(transport::ports::kRpc,
                                             [](NodeId, const Bytes&) {}),
               std::logic_error);
}

}  // namespace
}  // namespace ndsm
