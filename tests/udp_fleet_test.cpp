// Multi-process loopback fleet test — the acceptance criterion for the
// net::Stack seam: a fleet of ≥3 real OS processes over loopback UDP
// completes service discovery (registration + lookup) and a reliable
// exactly-once exchange using the very same Runtime / flooding router /
// reliable transport / centralized discovery code the sim tests drive.
//
// Process model: this binary is both the gtest runner and every fleet
// member. The parent test forks three children that re-exec
// /proc/self/exe with NDSM_FLEET_ROLE set; main() diverts such children
// into run_role() before gtest initialises. Roles:
//   directory  node 1: hosts the DirectoryServer, runs until SIGTERM.
//   provider   node 2: registers a "printer" service; counts per-sequence
//              app receipts and exits 0 only if every job arrived exactly
//              once (a transport duplicate or loss makes it exit 1).
//   consumer   node 3: discovers the printer via a retried query, then
//              sends kJobs reliable messages and exits 0 only when every
//              completion handler reported kOk.
//
// Everything is bounded: each role self-destructs after a stack-time
// deadline, the parent's wait loop gives up after ~60s and kills the
// fleet, and CMake puts a hard ctest TIMEOUT on top.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "discovery/centralized.hpp"
#include "discovery/directory_server.hpp"
#include "net/udp_stack.hpp"
#include "node/runtime.hpp"
#include "transport/ports.hpp"

namespace {

constexpr int kJobs = 8;
const ndsm::NodeId kDirectoryId{1};
const ndsm::NodeId kProviderId{2};
const ndsm::NodeId kConsumerId{3};

volatile std::sig_atomic_t g_terminated = 0;
void on_sigterm(int) { g_terminated = 1; }

ndsm::net::UdpStackConfig fleet_config(std::uint16_t base) {
  ndsm::net::UdpStackConfig cfg;
  cfg.port_base = base;
  cfg.peers = {kDirectoryId, kProviderId, kConsumerId};
  return cfg;
}

struct Member {
  ndsm::net::UdpStack stack;
  ndsm::node::Runtime runtime;

  Member(ndsm::NodeId id, std::uint16_t base)
      : stack(id, fleet_config(base)), runtime(stack, [] {
          ndsm::node::StackConfig cfg;
          cfg.router = ndsm::node::RouterPolicy::kFlooding;
          return cfg;
        }()) {}
};

int run_directory(std::uint16_t base) {
  std::signal(SIGTERM, on_sigterm);
  Member me{kDirectoryId, base};
  me.runtime.emplace_service<ndsm::discovery::DirectoryServer>("directory");
  me.stack.run_until([] { return g_terminated != 0; }, ndsm::duration::seconds(60));
  return 0;
}

int run_provider(std::uint16_t base) {
  using namespace ndsm;
  Member me{kProviderId, base};
  auto& disc = me.runtime.emplace_service<discovery::CentralizedDiscovery>(
      "discovery", std::vector<NodeId>{kDirectoryId});
  qos::SupplierQos printer;
  printer.service_type = "printer";
  disc.register_service(printer, duration::seconds(60));

  std::map<std::string, int> receipts;
  bool done = false;
  me.runtime.transport().set_receiver(
      transport::ports::kApp, [&](NodeId, const Bytes& payload) {
        const std::string job = to_string(payload);
        if (job == "done") {
          done = true;
        } else {
          receipts[job]++;
        }
      });

  if (!me.stack.run_until([&] { return done; }, duration::seconds(45))) return 2;
  // Grace window: a late transport duplicate must not slip past the check.
  me.stack.run_for(duration::millis(300));

  if (receipts.size() != static_cast<std::size_t>(kJobs)) return 3;
  for (const auto& [job, count] : receipts) {
    if (count != 1) return 4;  // duplicate delivery: exactly-once violated
  }
  return 0;
}

int run_consumer(std::uint16_t base) {
  using namespace ndsm;
  Member me{kConsumerId, base};
  auto& disc = me.runtime.emplace_service<discovery::CentralizedDiscovery>(
      "discovery", std::vector<NodeId>{kDirectoryId});

  // Registration propagates asynchronously: retry the lookup until the
  // directory answers with the provider's record.
  std::vector<discovery::ServiceRecord> found;
  bool query_in_flight = false;
  const bool discovered = me.stack.run_until(
      [&] {
        if (!found.empty()) return true;
        if (!query_in_flight) {
          query_in_flight = true;
          qos::ConsumerQos want;
          want.service_type = "printer";
          disc.query(want,
                     [&](std::vector<discovery::ServiceRecord> records) {
                       found = std::move(records);
                       query_in_flight = false;
                     },
                     8, duration::millis(500));
        }
        return false;
      },
      duration::seconds(30));
  if (!discovered) return 2;
  if (found[0].provider != kProviderId) return 3;

  int acked = 0, failed = 0;
  for (int i = 0; i < kJobs; ++i) {
    me.runtime.transport().send(found[0].provider, transport::ports::kApp,
                                to_bytes("job-" + std::to_string(i)),
                                [&](Status s) { s.is_ok() ? acked++ : failed++; });
  }
  if (!me.stack.run_until([&] { return acked + failed == kJobs; },
                          duration::seconds(30))) {
    return 4;
  }
  if (failed != 0) return 5;

  bool done_acked = false;
  me.runtime.transport().send(found[0].provider, transport::ports::kApp,
                              to_bytes("done"), [&](Status s) {
                                if (s.is_ok()) done_acked = true;
                              });
  if (!me.stack.run_until([&] { return done_acked; }, duration::seconds(15))) return 6;
  return 0;
}

int run_role(const std::string& role, std::uint16_t base) {
  if (role == "directory") return run_directory(base);
  if (role == "provider") return run_provider(base);
  if (role == "consumer") return run_consumer(base);
  return 64;
}

// Fork a child that re-execs this binary with the role environment set.
pid_t spawn_role(const char* exe, const char* role, std::uint16_t base) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  setenv("NDSM_FLEET_ROLE", role, 1);
  setenv("NDSM_FLEET_BASE", std::to_string(base).c_str(), 1);
  char* const argv[] = {const_cast<char*>(exe), nullptr};
  execv(exe, argv);
  _exit(63);  // exec failed
}

// Non-blocking reap with a bounded number of 50ms sleeps (no wall-clock
// reads: the budget is counted in sleep quanta, not time arithmetic).
bool wait_exit(pid_t pid, int* exit_code, int max_quanta) {
  for (int i = 0; i < max_quanta; ++i) {
    int wstatus = 0;
    const pid_t r = waitpid(pid, &wstatus, WNOHANG);
    if (r == pid) {
      *exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128 + WTERMSIG(wstatus);
      return true;
    }
    timespec ts{0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  return false;
}

TEST(UdpFleetTest, ThreeProcessDiscoveryAndExactlyOnceExchange) {
  // pid-salted base so parallel ctest runs on one host do not collide;
  // offset away from udp_stack_test's range.
  const auto base = static_cast<std::uint16_t>(24000 + (getpid() % 1500) * 24);

  const pid_t directory = spawn_role("/proc/self/exe", "directory", base);
  ASSERT_GT(directory, 0);
  const pid_t provider = spawn_role("/proc/self/exe", "provider", base);
  ASSERT_GT(provider, 0);
  const pid_t consumer = spawn_role("/proc/self/exe", "consumer", base);
  ASSERT_GT(consumer, 0);

  int consumer_exit = -1, provider_exit = -1;
  const bool consumer_done = wait_exit(consumer, &consumer_exit, 1200);  // ~60s
  const bool provider_done = wait_exit(provider, &provider_exit, 1200);

  // The directory serves until told to stop.
  kill(directory, SIGTERM);
  int directory_exit = -1;
  const bool directory_done = wait_exit(directory, &directory_exit, 200);

  // Leave no stragglers behind, whatever the verdict.
  for (const pid_t pid : {directory, provider, consumer}) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, WNOHANG);
  }

  ASSERT_TRUE(consumer_done) << "consumer did not exit";
  ASSERT_TRUE(provider_done) << "provider did not exit";
  ASSERT_TRUE(directory_done) << "directory did not exit after SIGTERM";
  EXPECT_EQ(consumer_exit, 0) << "consumer failed (discovery or reliable send)";
  EXPECT_EQ(provider_exit, 0) << "provider failed (exactly-once check)";
  EXPECT_EQ(directory_exit, 0) << "directory crashed";
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* role = std::getenv("NDSM_FLEET_ROLE")) {
    const char* base = std::getenv("NDSM_FLEET_BASE");
    return run_role(role, base ? static_cast<std::uint16_t>(std::atoi(base)) : 24000);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
