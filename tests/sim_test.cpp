#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace ndsm::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesDuringEvents) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(1234, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, 1234);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { seen = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel is a no-op
  sim.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelUnknownIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{9999}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> ran;
  sim.schedule_at(100, [&] { ran.push_back(1); });
  sim.schedule_at(200, [&] { ran.push_back(2); });
  sim.schedule_at(301, [&] { ran.push_back(3); });
  sim.run_until(300);
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 300);  // clock advanced to the deadline exactly
  sim.run_until(400);
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(300, [&] { ran = true; });
  sim.run_until(300);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(5, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(10, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, ExecutedEventCountTracks) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, RunAllRespectsMaxEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> forever = [&] {
    count++;
    sim.schedule_after(1, forever);
  };
  sim.schedule_at(0, forever);
  sim.run_all(100);
  EXPECT_EQ(count, 100);
}

TEST(PeriodicTimer, FiresRepeatedly) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, 100, [&] { fires++; }};
  timer.start();
  sim.run_until(1000);
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTimer, InitialDelayOverride) {
  Simulator sim;
  std::vector<Time> at;
  PeriodicTimer timer{sim, 100, [&] { at.push_back(sim.now()); }};
  timer.start(10);
  sim.run_until(250);
  EXPECT_EQ(at, (std::vector<Time>{10, 110, 210}));
}

TEST(PeriodicTimer, StopHalts) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, 100, [&] { fires++; }};
  timer.start();
  sim.run_until(350);
  timer.stop();
  sim.run_until(1000);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, StopFromWithinCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, 100, [&] {
                        if (++fires == 2) timer.stop();
                      }};
  timer.start();
  sim.run_until(10000);
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTimer timer{sim, 100, [&] { fires++; }};
    timer.start();
    sim.run_until(150);
  }
  sim.run_until(1000);
  EXPECT_EQ(fires, 1);
}

TEST(PeriodicTimer, RestartResetsPhase) {
  Simulator sim;
  std::vector<Time> at;
  PeriodicTimer timer{sim, 100, [&] { at.push_back(sim.now()); }};
  timer.start();
  sim.run_until(150);  // fired at 100
  timer.start();       // restart at t=150 -> next fire 250
  sim.run_until(260);
  EXPECT_EQ(at, (std::vector<Time>{100, 250}));
}

TEST(Simulator, PendingIsExact) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(sim.schedule_at(10 * (i + 1), [] {}));
  EXPECT_EQ(sim.pending(), 5u);
  EXPECT_TRUE(sim.cancel(ids[1]));
  EXPECT_TRUE(sim.cancel(ids[3]));
  EXPECT_EQ(sim.pending(), 3u);  // tombstones in the heap do not count
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(sim.pending(), 2u);
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, CancelInsideHandler) {
  // A handler cancels a later event, and also one scheduled at the very
  // same timestamp (already popped ordering must honour the cancel).
  Simulator sim;
  bool later_ran = false;
  bool same_time_ran = false;
  EventId later = EventId::invalid();
  EventId same_time = EventId::invalid();
  sim.schedule_at(100, [&] {
    EXPECT_TRUE(sim.cancel(later));
    EXPECT_TRUE(sim.cancel(same_time));
  });
  same_time = sim.schedule_at(100, [&] { same_time_ran = true; });
  later = sim.schedule_at(200, [&] { later_ran = true; });
  sim.run_all();
  EXPECT_FALSE(later_ran);
  EXPECT_FALSE(same_time_ran);
  EXPECT_EQ(sim.executed_events(), 1u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelAlreadyFiredIdIsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));
  // The slot is recycled; the stale id must not cancel the new occupant.
  bool ran = false;
  const EventId reused = sim.schedule_at(20, [&] { ran = true; });
  EXPECT_FALSE(sim.cancel(id));
  sim.run_all();
  EXPECT_TRUE(ran);
  (void)reused;
}

TEST(Simulator, SlabIdReuseAcrossGenerations) {
  Simulator sim;
  const EventId first = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(first));
  // The freed slot is recycled with a new generation: ids differ even
  // though the slot is the same, and the old id stays dead.
  bool ran = false;
  const EventId second = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_NE(first, second);
  EXPECT_EQ(sim.slab_capacity(), 1u);  // one slot, reused
  EXPECT_FALSE(sim.cancel(first));
  sim.run_all();
  EXPECT_TRUE(ran);
  // Many generations on one slot keep working.
  for (int i = 0; i < 100; ++i) {
    const EventId id = sim.schedule_after(1, [] {});
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));
  }
  EXPECT_EQ(sim.slab_capacity(), 1u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, SlabGrowsOnlyWithConcurrency) {
  Simulator sim;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) sim.schedule_after(i + 1, [] {});
    sim.run_all();
  }
  // 4 concurrent events at most -> at most 4 slots ever allocated.
  EXPECT_LE(sim.slab_capacity(), 4u);
  EXPECT_EQ(sim.executed_events(), 200u);
}

TEST(PeriodicTimer, SetIntervalMidFlight) {
  // Changing the interval from inside the handler applies to the next
  // re-arm; stop()+start() inside the handler resets the phase instead.
  Simulator sim;
  std::vector<Time> at;
  PeriodicTimer timer{sim, 100, [&] {
                        at.push_back(sim.now());
                        if (at.size() == 2) timer.set_interval(50);
                      }};
  timer.start();
  sim.run_until(400);
  EXPECT_EQ(at, (std::vector<Time>{100, 200, 250, 300, 350, 400}));
  EXPECT_EQ(timer.interval(), 50);
}

TEST(PeriodicTimer, RestartInsideHandlerKeepsSingleEvent) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, 100, [&] {
                        if (++fires == 1) timer.start(30);  // restart mid-flight
                      }};
  timer.start();
  sim.run_until(135);
  EXPECT_EQ(fires, 2);  // 100, then 130 — no duplicate armed event
  EXPECT_EQ(sim.pending(), 1u);
}

// --- event-order digest & slab audit ----------------------------------------

TEST(Determinism, EventDigestWitnessesExecution) {
  auto digest_of = [](std::uint64_t seed, int events) {
    Simulator sim{seed};
    for (int i = 0; i < events; ++i) {
      sim.schedule_at(static_cast<Time>(sim.rng().uniform_int(0, 1000)), [] {});
    }
    sim.run_all();
    return sim.digest();
  };
  EXPECT_EQ(digest_of(7, 50), digest_of(7, 50));  // twin runs: one value
  EXPECT_NE(digest_of(8, 50), digest_of(7, 50));  // seed-sensitive
  EXPECT_NE(digest_of(7, 49), digest_of(7, 50));  // event-count-sensitive
}

TEST(Determinism, EventDigestSensitiveToScheduleOrder) {
  // Identical event *sets* scheduled in opposite order: execution times
  // match but insertion sequence (mixed into the digest) differs, so the
  // digest still distinguishes the runs.
  auto run = [](bool swapped) {
    Simulator sim{1};
    if (swapped) {
      sim.schedule_at(20, [] {});
      sim.schedule_at(10, [] {});
    } else {
      sim.schedule_at(10, [] {});
      sim.schedule_at(20, [] {});
    }
    sim.run_all();
    return sim.digest();
  };
  EXPECT_NE(run(false), run(true));
}

TEST(Simulator, AuditVerifyPassesThroughChurn) {
  // Heavy schedule/cancel/execute churn with interleaved full audits:
  // the slab free list, the generation tags and the heap must agree at
  // every checkpoint (audit_verify aborts on any inconsistency).
  Simulator sim{42};
  std::vector<EventId> ids;
  for (int round = 0; round < 20; ++round) {
    ids.clear();
    for (int i = 0; i < 50; ++i) {
      ids.push_back(sim.schedule_after(static_cast<Time>(i * 3 + round), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 3) sim.cancel(ids[i]);
    sim.audit_verify();
    sim.run_until(sim.now() + 25);
    sim.audit_verify();
  }
  sim.run_all();
  sim.audit_verify();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Determinism, SameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    Simulator sim{seed};
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(static_cast<Time>(sim.rng().uniform_int(0, 1000)),
                      [&trace, &sim] { trace.push_back(static_cast<std::uint64_t>(sim.now())); });
    }
    sim.run_all();
    return trace;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

}  // namespace
}  // namespace ndsm::sim
