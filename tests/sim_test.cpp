#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace ndsm::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesDuringEvents) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(1234, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, 1234);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  Time seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { seen = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel is a no-op
  sim.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelUnknownIsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{9999}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<int> ran;
  sim.schedule_at(100, [&] { ran.push_back(1); });
  sim.schedule_at(200, [&] { ran.push_back(2); });
  sim.schedule_at(301, [&] { ran.push_back(3); });
  sim.run_until(300);
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 300);  // clock advanced to the deadline exactly
  sim.run_until(400);
  EXPECT_EQ(ran, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilIncludesDeadlineEvents) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(300, [&] { ran = true; });
  sim.run_until(300);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(5, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(10, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulator, ExecutedEventCountTracks) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, RunAllRespectsMaxEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> forever = [&] {
    count++;
    sim.schedule_after(1, forever);
  };
  sim.schedule_at(0, forever);
  sim.run_all(100);
  EXPECT_EQ(count, 100);
}

TEST(PeriodicTimer, FiresRepeatedly) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, 100, [&] { fires++; }};
  timer.start();
  sim.run_until(1000);
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTimer, InitialDelayOverride) {
  Simulator sim;
  std::vector<Time> at;
  PeriodicTimer timer{sim, 100, [&] { at.push_back(sim.now()); }};
  timer.start(10);
  sim.run_until(250);
  EXPECT_EQ(at, (std::vector<Time>{10, 110, 210}));
}

TEST(PeriodicTimer, StopHalts) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, 100, [&] { fires++; }};
  timer.start();
  sim.run_until(350);
  timer.stop();
  sim.run_until(1000);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, StopFromWithinCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer{sim, 100, [&] {
                        if (++fires == 2) timer.stop();
                      }};
  timer.start();
  sim.run_until(10000);
  EXPECT_EQ(fires, 2);
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTimer timer{sim, 100, [&] { fires++; }};
    timer.start();
    sim.run_until(150);
  }
  sim.run_until(1000);
  EXPECT_EQ(fires, 1);
}

TEST(PeriodicTimer, RestartResetsPhase) {
  Simulator sim;
  std::vector<Time> at;
  PeriodicTimer timer{sim, 100, [&] { at.push_back(sim.now()); }};
  timer.start();
  sim.run_until(150);  // fired at 100
  timer.start();       // restart at t=150 -> next fire 250
  sim.run_until(260);
  EXPECT_EQ(at, (std::vector<Time>{100, 250}));
}

TEST(Determinism, SameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    Simulator sim{seed};
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(static_cast<Time>(sim.rng().uniform_int(0, 1000)),
                      [&trace, &sim] { trace.push_back(static_cast<std::uint64_t>(sim.now())); });
    }
    sim.run_all();
    return trace;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

}  // namespace
}  // namespace ndsm::sim
