#include <gtest/gtest.h>

#include "milan/engine.hpp"
#include "milan/planner.hpp"
#include "test_helpers.hpp"

namespace ndsm::milan {
namespace {

Component make_component(std::uint64_t id, NodeId node, const std::string& variable,
                         double q, double power_w = 0.001) {
  Component c;
  c.id = ComponentId{id};
  c.node = node;
  c.name = variable + "-" + std::to_string(id);
  c.qos[variable] = q;
  c.sample_power_w = power_w;
  return c;
}

TEST(Spec, CombinedReliabilityFormula) {
  const Component a = make_component(1, NodeId{0}, "hr", 0.8);
  const Component b = make_component(2, NodeId{1}, "hr", 0.5);
  EXPECT_DOUBLE_EQ(combined_reliability({&a}, "hr"), 0.8);
  EXPECT_DOUBLE_EQ(combined_reliability({&a, &b}, "hr"), 1.0 - 0.2 * 0.5);
  EXPECT_DOUBLE_EQ(combined_reliability({}, "hr"), 0.0);
  EXPECT_DOUBLE_EQ(combined_reliability({&a}, "unrelated"), 0.0);
}

TEST(Spec, SatisfiesChecksEveryVariable) {
  const Component hr = make_component(1, NodeId{0}, "hr", 0.9);
  const Component bp = make_component(2, NodeId{1}, "bp", 0.9);
  Requirements req{{"hr", 0.8}, {"bp", 0.8}};
  EXPECT_FALSE(satisfies({&hr}, req));
  EXPECT_TRUE(satisfies({&hr, &bp}, req));
  Requirements strict{{"hr", 0.95}};
  EXPECT_FALSE(satisfies({&hr}, strict));
}

// A planner input with uniform per-component drain on its own node only.
PlanInput simple_input(std::vector<Component> components, Requirements required,
                       std::map<NodeId, double> batteries) {
  PlanInput input;
  input.components = std::move(components);
  input.required = std::move(required);
  input.node_drain_w = [](const Component& c) {
    return std::unordered_map<NodeId, double>{{c.node, c.sample_power_w}};
  };
  input.battery_j = [batteries](NodeId n) { return batteries.at(n); };
  return input;
}

TEST(Planner, InfeasibleWhenRequirementsUnreachable) {
  auto input = simple_input({make_component(1, NodeId{0}, "hr", 0.5)}, {{"hr", 0.9}},
                            {{NodeId{0}, 100.0}});
  const auto plan = plan_components(input, Strategy::kOptimal);
  EXPECT_FALSE(plan.feasible);
}

TEST(Planner, OptimalPicksMinimalSufficientSet) {
  // Two redundant sensors; one suffices. Optimal must activate exactly one
  // (fewer active nodes -> longer lifetime).
  auto input = simple_input({make_component(1, NodeId{0}, "hr", 0.95),
                             make_component(2, NodeId{1}, "hr", 0.95)},
                            {{"hr", 0.9}}, {{NodeId{0}, 100.0}, {NodeId{1}, 100.0}});
  const auto plan = plan_components(input, Strategy::kOptimal);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.active.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.estimated_lifetime_s, 100.0 / 0.001);
}

TEST(Planner, OptimalPrefersHighBatteryHost) {
  auto input = simple_input({make_component(1, NodeId{0}, "hr", 0.95),
                             make_component(2, NodeId{1}, "hr", 0.95)},
                            {{"hr", 0.9}}, {{NodeId{0}, 10.0}, {NodeId{1}, 100.0}});
  const auto plan = plan_components(input, Strategy::kOptimal);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.active.size(), 1u);
  EXPECT_EQ(plan.active[0], ComponentId{2});  // the well-charged host
}

TEST(Planner, OptimalCombinesWeakSensors) {
  // Each sensor alone is too weak; two combine to 1-(0.4)^2 = 0.84 >= 0.8.
  auto input = simple_input({make_component(1, NodeId{0}, "hr", 0.6),
                             make_component(2, NodeId{1}, "hr", 0.6),
                             make_component(3, NodeId{2}, "hr", 0.6)},
                            {{"hr", 0.8}},
                            {{NodeId{0}, 100.0}, {NodeId{1}, 100.0}, {NodeId{2}, 100.0}});
  const auto plan = plan_components(input, Strategy::kOptimal);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.active.size(), 2u);
  EXPECT_NEAR(plan.achieved.at("hr"), 0.84, 1e-9);
}

TEST(Planner, AllOnUsesEverything) {
  auto input = simple_input({make_component(1, NodeId{0}, "hr", 0.95),
                             make_component(2, NodeId{1}, "hr", 0.95)},
                            {{"hr", 0.9}}, {{NodeId{0}, 100.0}, {NodeId{1}, 100.0}});
  const auto plan = plan_components(input, Strategy::kAllOn);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.active.size(), 2u);
}

TEST(Planner, OptimalLifetimeAtLeastGreedyAtLeastAllOn) {
  // Multi-variable scenario with mixed hosts and batteries.
  std::vector<Component> comps;
  comps.push_back(make_component(1, NodeId{0}, "hr", 0.9, 0.002));
  comps.push_back(make_component(2, NodeId{1}, "hr", 0.7, 0.001));
  comps.push_back(make_component(3, NodeId{2}, "bp", 0.85, 0.003));
  comps.push_back(make_component(4, NodeId{3}, "bp", 0.85, 0.001));
  comps.push_back(make_component(5, NodeId{4}, "spo2", 0.9, 0.002));
  auto input = simple_input(std::move(comps), {{"hr", 0.8}, {"bp", 0.8}, {"spo2", 0.8}},
                            {{NodeId{0}, 50.0},
                             {NodeId{1}, 100.0},
                             {NodeId{2}, 20.0},
                             {NodeId{3}, 80.0},
                             {NodeId{4}, 60.0}});
  Rng rng{3};
  const auto optimal = plan_components(input, Strategy::kOptimal);
  const auto greedy = plan_components(input, Strategy::kGreedy);
  const auto all_on = plan_components(input, Strategy::kAllOn);
  const auto random = plan_components(input, Strategy::kRandomFeasible, &rng);
  ASSERT_TRUE(optimal.feasible);
  ASSERT_TRUE(greedy.feasible);
  ASSERT_TRUE(all_on.feasible);
  ASSERT_TRUE(random.feasible);
  EXPECT_GE(optimal.estimated_lifetime_s, greedy.estimated_lifetime_s - 1e-9);
  EXPECT_GE(greedy.estimated_lifetime_s, all_on.estimated_lifetime_s - 1e-9);
  EXPECT_GE(optimal.estimated_lifetime_s, random.estimated_lifetime_s - 1e-9);
}

TEST(Planner, GreedyHandlesLargeComponentCounts) {
  std::vector<Component> comps;
  std::map<NodeId, double> batteries;
  for (std::uint64_t i = 0; i < 40; ++i) {
    comps.push_back(make_component(i, NodeId{i}, "v" + std::to_string(i % 4), 0.7));
    batteries[NodeId{i}] = 100.0;
  }
  auto input = simple_input(std::move(comps),
                            {{"v0", 0.9}, {"v1", 0.9}, {"v2", 0.9}, {"v3", 0.9}}, batteries);
  const auto plan = plan_components(input, Strategy::kGreedy);
  ASSERT_TRUE(plan.feasible);
  // Needs two 0.7-sensors per variable (1-0.09=0.91): 8 active.
  EXPECT_EQ(plan.active.size(), 8u);
}

TEST(Planner, OptimalFallsBackToGreedyAboveExactLimit) {
  std::vector<Component> comps;
  std::map<NodeId, double> batteries;
  for (std::uint64_t i = 0; i < kExactLimit + 4; ++i) {
    comps.push_back(make_component(i, NodeId{i}, "v", 0.5));
    batteries[NodeId{i}] = 100.0;
  }
  auto input = simple_input(std::move(comps), {{"v", 0.9}}, batteries);
  const auto plan = plan_components(input, Strategy::kOptimal);
  ASSERT_TRUE(plan.feasible);
  EXPECT_LT(plan.sets_examined, 1ULL << kExactLimit);  // not exhaustive
}

TEST(Planner, RandomFeasibleIsDeterministicPerSeed) {
  std::vector<Component> comps;
  std::map<NodeId, double> batteries;
  for (std::uint64_t i = 0; i < 8; ++i) {
    comps.push_back(make_component(i, NodeId{i}, "v", 0.6));
    batteries[NodeId{i}] = 100.0;
  }
  auto input = simple_input(std::move(comps), {{"v", 0.9}}, batteries);
  Rng r1{9};
  Rng r2{9};
  const auto a = plan_components(input, Strategy::kRandomFeasible, &r1);
  const auto b = plan_components(input, Strategy::kRandomFeasible, &r2);
  EXPECT_EQ(a.active, b.active);
}

// --- engine tests on a live simulated sensor field -------------------------

struct MilanField : ndsm::testing::WirelessGrid {
  // 3x3 sensor grid; node 0 is the sink (mains powered by giving it a huge
  // battery); sensors on the other nodes.
  MilanField() : WirelessGrid(9, 20.0, 42, /*battery_j=*/2.0) {
    table = std::make_shared<routing::GlobalRoutingTable>(world, routing::Metric::kEnergyAware);
    with_routers<routing::GlobalRouter>(table);
  }

  MilanEngine::RouterOf router_of() {
    return [this](NodeId node) { return ndsm::node::router_of(runtimes, node); };
  }

  ApplicationSpec health_app() {
    ApplicationSpec app;
    app.name = "health";
    app.variables = {"hr", "bp"};
    app.states["rest"] = Requirements{{"hr", 0.7}, {"bp", 0.7}};
    app.states["emergency"] = Requirements{{"hr", 0.99}, {"bp", 0.9}};
    app.initial_state = "rest";
    return app;
  }

  std::vector<Component> sensors() {
    std::vector<Component> out;
    // hr sensors on nodes 1,2,3; bp on 4,5,6.
    for (std::uint64_t i = 1; i <= 3; ++i) {
      auto c = make_component(i, nodes[i], "hr", 0.9, 0.0005);
      c.sample_period = duration::millis(500);
      out.push_back(c);
    }
    for (std::uint64_t i = 4; i <= 6; ++i) {
      auto c = make_component(i, nodes[i], "bp", 0.9, 0.0005);
      c.sample_period = duration::millis(500);
      out.push_back(c);
    }
    return out;
  }

  std::shared_ptr<routing::GlobalRoutingTable> table;
};

TEST(Engine, PlansAndDeliversSamples) {
  MilanField field;
  MilanEngine engine{field.world,  field.nodes[0], field.table, field.router_of(),
                     field.health_app(), field.sensors()};
  engine.start();
  ASSERT_TRUE(engine.current_plan().feasible);
  // Rest state: one hr + one bp sensor suffice (0.9 >= 0.7).
  EXPECT_EQ(engine.current_plan().active.size(), 2u);
  field.sim.run_until(duration::seconds(10));
  EXPECT_GT(engine.stats().samples_delivered, 10u);
}

TEST(Engine, StateChangeActivatesMoreSensors) {
  MilanField field;
  MilanEngine engine{field.world,  field.nodes[0], field.table, field.router_of(),
                     field.health_app(), field.sensors()};
  engine.start();
  field.sim.run_until(duration::seconds(2));
  const auto rest_active = engine.current_plan().active.size();
  engine.set_state("emergency");
  ASSERT_TRUE(engine.current_plan().feasible);
  // 0.99 hr needs two 0.9 sensors (1-0.01=0.99).
  EXPECT_GT(engine.current_plan().active.size(), rest_active);
  EXPECT_GE(engine.achieved("hr"), 0.99);
}

TEST(Engine, ReplansAroundComponentDeath) {
  MilanField field;
  MilanEngine engine{field.world,  field.nodes[0], field.table, field.router_of(),
                     field.health_app(), field.sensors()};
  engine.start();
  field.sim.run_until(duration::seconds(2));
  // Kill the active hr sensor's node; the engine must swap in another.
  NodeId active_hr = NodeId::invalid();
  for (const ComponentId id : engine.current_plan().active) {
    if (id.value() <= 3) active_hr = field.nodes[id.value()];
  }
  ASSERT_TRUE(active_hr.valid());
  field.world.kill(active_hr);
  field.sim.run_until(duration::seconds(4));
  ASSERT_TRUE(engine.current_plan().feasible);
  EXPECT_GE(engine.stats().replans_on_death, 1u);
  bool has_hr = false;
  for (const ComponentId id : engine.current_plan().active) {
    has_hr = has_hr || (id.value() <= 3 && field.nodes[id.value()] != active_hr);
  }
  EXPECT_TRUE(has_hr);
  // Samples keep flowing after the swap.
  const auto before = engine.stats().samples_delivered;
  field.sim.run_until(duration::seconds(8));
  EXPECT_GT(engine.stats().samples_delivered, before);
}

TEST(Engine, ReportsInfeasibilityWhenSensorsExhausted) {
  MilanField field;
  auto app = field.health_app();
  app.states["rest"] = Requirements{{"hr", 0.7}};  // hr only
  std::vector<Component> sensors;
  sensors.push_back(make_component(1, field.nodes[1], "hr", 0.9, 0.0005));
  MilanEngine engine{field.world, field.nodes[0],      field.table,
                     field.router_of(), std::move(app), std::move(sensors)};
  engine.start();
  ASSERT_TRUE(engine.current_plan().feasible);
  field.world.kill(field.nodes[1]);  // the only hr sensor
  field.sim.run_until(duration::seconds(2));
  EXPECT_FALSE(engine.current_plan().feasible);
  EXPECT_GE(engine.stats().first_infeasible_at, 0);
  EXPECT_DOUBLE_EQ(engine.achieved("hr"), 0.0);
}

TEST(Engine, SamplingDrainsBatteries) {
  MilanField field;
  MilanEngine engine{field.world,  field.nodes[0], field.table, field.router_of(),
                     field.health_app(), field.sensors()};
  engine.start();
  const ComponentId active = engine.current_plan().active[0];
  const NodeId host = field.nodes[active.value()];
  const double before = field.world.battery(host).remaining();
  field.sim.run_until(duration::seconds(10));
  EXPECT_LT(field.world.battery(host).remaining(), before);
}

TEST(Engine, CostModelChargesRelays) {
  // A component far from the sink must show drain entries on intermediate
  // relay nodes in the planner's cost model.
  MilanField field;
  MilanEngine engine{field.world,  field.nodes[0], field.table, field.router_of(),
                     field.health_app(), field.sensors()};
  engine.start();
  const auto input = engine.make_plan_input();
  // Sensor on node 6 (grid position (0,2)... two hops from node 0).
  const Component* far = nullptr;
  for (const auto& c : input.components) {
    if (c.node == field.nodes[6]) far = &c;
  }
  ASSERT_NE(far, nullptr);
  const auto drain = input.node_drain_w(*far);
  EXPECT_GE(drain.size(), 3u);  // host + at least one relay + sink rx
}

}  // namespace
}  // namespace ndsm::milan
