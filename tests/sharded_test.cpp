// Tests for the sharded parallel simulation stack: sim::ShardedEngine
// (conservative windows, ordered mailboxes, key-ordered execution),
// net::ShardMap (stripe partition), net::ShardedWorld (digest-identical
// execution for any shard count and any worker count), and the
// node::Runtime home-shard pin. The digest-equality tests here are the
// contract the whole PR rides on: a sharded run is not "approximately"
// the single-shard run, it is byte-identical.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "net/shard_map.hpp"
#include "net/sharded_world.hpp"
#include "net/world.hpp"
#include "node/runtime.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace ndsm {
namespace {

// --- engine ----------------------------------------------------------------

TEST(ShardedEngine, ExecutesSameInstantEventsInKeyOrder) {
  sim::ShardedEngine e({.shards = 1, .workers = 1, .lookahead = 10, .seed = 1});
  std::vector<int> order;
  e.schedule(0, 100, 5, 0, [&] { order.push_back(5); });
  e.schedule(0, 100, 1, 0, [&] { order.push_back(1); });
  e.schedule(0, 100, 3, 7, [&] { order.push_back(3); });
  e.schedule(0, 100, 3, 2, [&] { order.push_back(2); });
  e.run_until(200);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 5}));
  EXPECT_EQ(e.stats().executed, 4u);
}

TEST(ShardedEngine, CrossShardPostArrivesThroughTheMailbox) {
  sim::ShardedEngine e({.shards = 2, .workers = 1, .lookahead = 100, .seed = 1});
  Time got = -1;
  e.schedule(0, 50, 1, 0, [&] {
    e.post(0, 1, e.now(0) + 100, 1, 0, [&] { got = e.now(1); });
  });
  e.run_until(1000);
  EXPECT_EQ(got, 150);
  EXPECT_EQ(e.stats().mailbox_posts, 1u);
  EXPECT_EQ(e.executed(1), 1u);
}

// Ring workload: every event records (shard, time) and posts the next hop
// to the neighboring shard. The execution trace must be identical for any
// worker count — the engine's core determinism claim.
std::vector<std::pair<std::uint32_t, Time>> run_ring(std::size_t workers) {
  sim::ShardedEngine e({.shards = 4, .workers = workers, .lookahead = 50, .seed = 3});
  auto trace = std::make_shared<std::vector<std::pair<std::uint32_t, Time>>>();
  // One recursive hop chain per starting shard, tagged by key_hi so
  // same-instant arrivals in one shard stay ordered by chain id.
  std::function<void(std::uint32_t, std::uint64_t, std::uint64_t)> hop =
      [&](std::uint32_t shard, std::uint64_t chain, std::uint64_t step) {
        trace->push_back({shard, e.now(shard)});
        if (step >= 20) return;
        const auto next = static_cast<std::uint32_t>((shard + 1) % 4);
        e.post(shard, next, e.now(shard) + 50, chain, step,
               [&hop, next, chain, step] { hop(next, chain, step + 1); });
      };
  for (std::uint32_t s = 0; s < 4; ++s) {
    e.schedule(s, 10 + s, s, 0, [&hop, s] { hop(s, s, 0); });
  }
  e.run_until(duration::millis(10));
  // Stable collection order: the trace vector is appended from whichever
  // worker runs the shard, so sort by (time, shard, chain position) —
  // events themselves are unique per (shard, time) here.
  std::sort(trace->begin(), trace->end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second : a.first < b.first;
            });
  return *trace;
}

TEST(ShardedEngine, RingTraceIsWorkerCountInvariant) {
  const auto serial = run_ring(1);
  EXPECT_EQ(serial.size(), 4u * 21u);
  EXPECT_EQ(run_ring(2), serial);
  EXPECT_EQ(run_ring(8), serial);
}

TEST(ShardedEngineDeath, LookaheadViolationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::ShardedEngine e({.shards = 2, .workers = 1, .lookahead = 100, .seed = 1});
        e.schedule(0, 50, 1, 0, [&] { e.post(0, 1, e.now(0) + 1, 1, 0, [] {}); });
        e.run_until(1000);
      },
      "lookahead");
}

// --- shard map ---------------------------------------------------------------

TEST(ShardMap, StripesPartitionTheExtent) {
  const net::ShardMap map(0, 1000, 100, 8);
  EXPECT_EQ(map.shards(), 8u);
  EXPECT_EQ(map.shard_of({0, 0}), 0u);
  EXPECT_EQ(map.shard_of({-5, 50}), 0u);
  EXPECT_EQ(map.shard_of({999, 0}), 7u);
  EXPECT_EQ(map.shard_of({5000, 0}), 7u);
}

TEST(ShardMap, ShardCountClampsToRangeWideStripes) {
  // A 150 m extent cannot fit two 100 m stripes: collapses to one shard.
  const net::ShardMap clamped(0, 150, 100, 8);
  EXPECT_EQ(clamped.shards(), 1u);
  // 1000 m / 100 m range fits at most 10; request 4, get 4.
  const net::ShardMap four(0, 1000, 100, 4);
  EXPECT_EQ(four.shards(), 4u);
  EXPECT_DOUBLE_EQ(four.stripe_width(), 250.0);
}

TEST(ShardMap, TransmissionsReachOnlyAdjacentStripes) {
  const net::ShardMap map(0, 1000, 100, 8);  // width 125
  EXPECT_EQ(map.shard_of({130, 0}), 1u);
  EXPECT_TRUE(map.reaches({130, 0}, 100, 0));   // 30 falls in stripe 0
  EXPECT_FALSE(map.reaches({130, 0}, 100, 2));  // 230 < 250: stays in stripe 1
  EXPECT_TRUE(map.reaches({260, 0}, 100, 2));
}

// --- sharded world -----------------------------------------------------------

struct RunOutcome {
  std::uint64_t digest = 0;
  std::vector<std::uint64_t> shard_digests;
  net::ShardedWorld::Totals totals;
  std::size_t shards = 0;
  std::uint64_t mailbox_posts = 0;
  // Per-node delivery log: (delivery time, sender id, was_broadcast).
  std::vector<std::vector<std::tuple<Time, std::uint64_t, bool>>> logs;
};

// A cols x rows lattice (20 m spacing, 25 m range: 4-connected) where
// every node broadcasts three staggered rounds and replies to a subset of
// broadcasts with a unicast — exercising local fan-out, cross-shard
// fan-out, and cross-shard unicast from inside handlers. With `chaos`,
// the full fault plan plus scripted kill/revive cycles runs on top.
RunOutcome run_lattice(std::size_t cols, std::size_t rows, std::size_t shards,
                       std::size_t workers, bool chaos) {
  net::ShardedWorld w({.shards = shards, .workers = workers, .seed = 99});
  const double spacing = 20.0;
  const MediumId medium = w.add_medium(net::wifi80211(25.0, chaos ? 0.05 : 0.0));

  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < cols * rows; ++i) {
    const NodeId id = w.add_node({static_cast<double>(i % cols) * spacing,
                                  static_cast<double>(i / cols) * spacing});
    w.attach(id, medium);
    ids.push_back(id);
  }

  RunOutcome out;
  out.logs.resize(ids.size());
  for (const NodeId id : ids) {
    w.set_handler(id, [&w, &out, id](const net::ShardFrame& f) {
      const bool bcast = f.dst == net::kBroadcast;
      out.logs[id.value()].emplace_back(f.at, f.src.value(), bcast);
      if (bcast && (f.src.value() + id.value()) % 5 == 0) {
        (void)w.send(id, f.src, Bytes{0x42});
      }
    });
  }

  if (chaos) {
    net::ShardedFaultPlan plan;
    plan.loss_windows.push_back({duration::millis(2), duration::millis(8), 0.2});
    plan.partitions.push_back(
        {duration::millis(5), duration::millis(9), spacing * static_cast<double>(cols) / 2});
    plan.duplicate_p = 0.1;
    plan.duplicate_extra_delay = duration::micros(50);
    plan.jitter_p = 0.2;
    plan.jitter_max = duration::micros(500);
    w.set_faults(plan);
    for (std::size_t i = 0; i < ids.size(); i += 7) {
      w.kill_at(ids[i], duration::millis(4));
      w.revive_at(ids[i], duration::millis(12));
    }
  }

  const Bytes payload(32, 0xab);
  for (const NodeId id : ids) {
    for (int round = 0; round < 3; ++round) {
      const Time at = duration::millis(1 + static_cast<Time>(id.value() % 7)) +
                      round * duration::millis(5);
      w.schedule(id, at, [&w, id, payload] { (void)w.broadcast(id, payload); });
    }
  }

  w.run_until(duration::millis(30));
  out.digest = w.digest();
  for (std::size_t s = 0; s < w.shard_count(); ++s) {
    out.shard_digests.push_back(w.shard_digest(s));
  }
  out.totals = w.totals();
  out.shards = w.shard_count();
  out.mailbox_posts = w.engine().stats().mailbox_posts;
  return out;
}

void expect_identical_workload(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.logs, b.logs);
  // Aggregate channel outcomes are sharding-invariant too, not just the
  // digest: the same frames were sent, lost, duplicated and delivered.
  EXPECT_EQ(a.totals.frames_sent, b.totals.frames_sent);
  EXPECT_EQ(a.totals.frames_delivered, b.totals.frames_delivered);
  EXPECT_EQ(a.totals.frames_lost, b.totals.frames_lost);
  EXPECT_EQ(a.totals.fault_drops, b.totals.fault_drops);
  EXPECT_EQ(a.totals.fault_duplicates, b.totals.fault_duplicates);
  EXPECT_EQ(a.totals.fault_delays, b.totals.fault_delays);
}

TEST(ShardedWorld, TwinRunsAreByteIdentical) {
  const RunOutcome a = run_lattice(8, 8, 4, 2, false);
  const RunOutcome b = run_lattice(8, 8, 4, 2, false);
  expect_identical_workload(a, b);
  EXPECT_EQ(a.shard_digests, b.shard_digests);
}

TEST(ShardedWorld, DigestInvariantAcrossWorkerCounts) {
  const RunOutcome serial = run_lattice(8, 8, 4, 1, false);
  ASSERT_EQ(serial.shards, 4u);
  EXPECT_GT(serial.totals.frames_delivered, 0u);
  for (const std::size_t workers : {2u, 8u}) {
    const RunOutcome parallel = run_lattice(8, 8, 4, workers, false);
    expect_identical_workload(serial, parallel);
    EXPECT_EQ(serial.shard_digests, parallel.shard_digests);
  }
}

TEST(ShardedWorld, DigestInvariantAcrossShardCounts) {
  const RunOutcome single = run_lattice(8, 8, 1, 1, false);
  ASSERT_EQ(single.shards, 1u);
  // One shard owns every node, so its shard digest IS the world digest —
  // the base case of the digest-merge argument (DESIGN §13).
  EXPECT_EQ(single.shard_digests[0], single.digest);
  const RunOutcome sharded = run_lattice(8, 8, 4, 2, false);
  ASSERT_EQ(sharded.shards, 4u);
  expect_identical_workload(single, sharded);
  EXPECT_GT(sharded.totals.cross_shard_transmissions, 0u);
  EXPECT_GT(sharded.mailbox_posts, 0u);
}

TEST(ShardedWorld, BoundaryStraddlingChainStaysDeterministic) {
  // A single 40-node chain along x: every cut line severs actual radio
  // links, so all traffic across the three cuts rides the mailboxes.
  const RunOutcome single = run_lattice(40, 1, 1, 1, false);
  const RunOutcome sharded = run_lattice(40, 1, 4, 8, false);
  ASSERT_EQ(sharded.shards, 4u);
  expect_identical_workload(single, sharded);
  EXPECT_GT(sharded.totals.cross_shard_transmissions, 0u);
  EXPECT_GT(sharded.mailbox_posts, 0u);
}

TEST(ShardedWorld, UnicastCrossesShards) {
  net::ShardedWorld w({.shards = 4, .workers = 2, .seed = 5});
  const MediumId m = w.add_medium(net::wifi80211(25.0, 0.0));
  // Two nodes astride a cut: 8 nodes spread the extent so 4 stripes fit.
  std::vector<NodeId> ids;
  for (int i = 0; i < 8; ++i) {
    const NodeId id = w.add_node({static_cast<double>(i) * 20.0, 0});
    w.attach(id, m);
    ids.push_back(id);
  }
  Time got = -1;
  NodeId got_src = NodeId::invalid();
  w.set_handler(ids[4], [&](const net::ShardFrame& f) {
    got = f.at;
    got_src = f.src;
  });
  w.schedule(ids[3], duration::millis(1),
             [&w, &ids] { ASSERT_TRUE(w.send(ids[3], ids[4], Bytes{1, 2, 3}).is_ok()); });
  w.run_until(duration::millis(5));
  ASSERT_NE(w.shard_of(ids[3]), w.shard_of(ids[4]));
  EXPECT_EQ(got_src, ids[3]);
  EXPECT_GT(got, duration::millis(1));
  EXPECT_EQ(w.totals().cross_shard_transmissions, 1u);
  EXPECT_EQ(w.delivered(ids[4]), 1u);
}

TEST(ShardedWorld, OutOfRangeUnicastIsUnreachable) {
  net::ShardedWorld w({.shards = 1, .workers = 1, .seed = 5});
  const MediumId m = w.add_medium(net::wifi80211(25.0, 0.0));
  const NodeId a = w.add_node({0, 0});
  const NodeId b = w.add_node({500, 0});
  w.attach(a, m);
  w.attach(b, m);
  Status st = Status::ok();
  w.schedule(a, 1000, [&] { st = w.send(a, b, Bytes{9}); });
  w.run_until(2000);
  EXPECT_EQ(st.code(), ErrorCode::kUnreachable);
}

// The 100-node chaos soak: full fault plan plus kill/revive churn, run
// sharded at every worker count and single-sharded — every configuration
// must land on the same digest, byte for byte.
TEST(ShardedWorld, ChaosSoakDigestIdenticalAcrossShardingsAndWorkers) {
  const RunOutcome single = run_lattice(10, 10, 1, 1, true);
  EXPECT_GT(single.totals.frames_lost, 0u);
  EXPECT_GT(single.totals.fault_drops, 0u);
  EXPECT_GT(single.totals.fault_duplicates, 0u);
  EXPECT_GT(single.totals.fault_delays, 0u);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    const RunOutcome sharded = run_lattice(10, 10, 4, workers, true);
    ASSERT_EQ(sharded.shards, 4u);
    expect_identical_workload(single, sharded);
  }
}

TEST(ShardedWorld, KillAndReviveAreDigestVisible) {
  // Same workload, one run with a scripted crash window: the digests must
  // differ (deliveries were suppressed while down) — liveness is part of
  // the observable execution, not a side channel.
  net::ShardedWorld quiet({.shards = 2, .workers = 1, .seed = 7});
  net::ShardedWorld churn({.shards = 2, .workers = 1, .seed = 7});
  for (net::ShardedWorld* w : {&quiet, &churn}) {
    const MediumId m = w->add_medium(net::wifi80211(25.0, 0.0));
    std::vector<NodeId> ids;
    for (int i = 0; i < 6; ++i) {
      const NodeId id = w->add_node({static_cast<double>(i) * 20.0, 0});
      w->attach(id, m);
      ids.push_back(id);
    }
    for (const NodeId id : ids) {
      for (int round = 0; round < 4; ++round) {
        w->schedule(id, duration::millis(1 + round * 2), [w, id] {
          (void)w->broadcast(id, Bytes{0x1});
        });
      }
    }
  }
  churn.kill_at(NodeId{2}, duration::millis(2));
  churn.revive_at(NodeId{2}, duration::millis(6));
  quiet.run_until(duration::millis(10));
  churn.run_until(duration::millis(10));
  EXPECT_NE(quiet.digest(), churn.digest());
  EXPECT_LT(churn.totals().frames_delivered, quiet.totals().frames_delivered);
}

// --- runtime pinning ---------------------------------------------------------

TEST(RuntimeHomeShard, PinIsPositionDerivedAndRestartStable) {
  sim::Simulator s(7);
  net::World w(s);
  const MediumId m = w.add_medium(net::wifi80211(100.0, 0.0));
  w.set_shard_map(std::make_shared<net::ShardMap>(0.0, 1000.0, 100.0, 4));
  node::StackConfig cfg;
  cfg.media = {m};
  node::Runtime a(w, Vec2{50, 0}, cfg);
  node::Runtime b(w, Vec2{900, 0}, cfg);
  EXPECT_EQ(a.home_shard(), 0u);
  EXPECT_EQ(b.home_shard(), 3u);
  // Mobility across a cut line does not migrate the pin, and neither does
  // a crash/restart cycle: the node rejoins its original timeline.
  w.set_position(b.id(), Vec2{50, 0});
  b.crash();
  b.restart();
  EXPECT_TRUE(b.up());
  EXPECT_EQ(b.home_shard(), 3u);
}

TEST(RuntimeHomeShard, DefaultsToShardZeroWithoutMap) {
  sim::Simulator s(7);
  net::World w(s);
  const MediumId m = w.add_medium(net::wifi80211(100.0, 0.0));
  node::StackConfig cfg;
  cfg.media = {m};
  node::Runtime a(w, Vec2{500, 0}, cfg);
  EXPECT_EQ(a.home_shard(), 0u);
}

}  // namespace
}  // namespace ndsm
