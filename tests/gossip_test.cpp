#include <gtest/gtest.h>

#include "discovery/gossip.hpp"
#include "test_helpers.hpp"

namespace ndsm::discovery {
namespace {

using testing::Lan;

qos::SupplierQos svc(const std::string& type = "sensor") {
  qos::SupplierQos s;
  s.service_type = type;
  s.reliability = 0.9;
  return s;
}

qos::ConsumerQos wants(const std::string& type = "sensor") {
  qos::ConsumerQos c;
  c.service_type = type;
  return c;
}

struct GossipNet : Lan {
  // A line of seed relationships: node i seeds only node i-1, so full
  // knowledge requires epidemic spread (and peer learning closes the
  // reverse edges).
  explicit GossipNet(std::size_t n, GossipConfig cfg = {}) : Lan(n) {
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<NodeId> seeds;
      if (i > 0) seeds.push_back(nodes[i - 1]);
      clients.push_back(std::make_unique<GossipDiscovery>(transport(i), seeds, cfg));
    }
  }
  std::vector<std::unique_ptr<GossipDiscovery>> clients;
};

TEST(Gossip, KnowledgeSpreadsEpidemically) {
  GossipNet net{8};
  net.clients[7]->register_service(svc(), duration::seconds(600));
  net.sim.run_until(duration::seconds(20));  // ~10 rounds
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_GE(net.clients[i]->cache_size(), 1u) << i;
  }
}

TEST(Gossip, QueriesAnsweredFromCacheWithoutNetwork) {
  GossipNet net{4};
  net.clients[3]->register_service(svc(), duration::seconds(600));
  net.sim.run_until(duration::seconds(15));
  net.world.reset_stats();
  std::vector<ServiceRecord> found;
  net.clients[0]->query(wants(), [&](std::vector<ServiceRecord> r) { found = r; }, 4,
                        duration::seconds(1));
  net.sim.run_until(net.sim.now() + duration::millis(10));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].provider, net.nodes[3]);
  // The query itself sent nothing; any frames in this 10 ms window can only
  // be background gossip (at most one round).
  EXPECT_LE(net.world.stats().frames_sent, 4u * 2u);
}

TEST(Gossip, PeersLearnedFromIncomingGossip) {
  GossipNet net{4};
  // Node 0 was seeded with nobody pointing at it except node 1; after a
  // few rounds it must have learned peers from received gossip.
  net.clients[0]->register_service(svc("beacon"), duration::seconds(600));
  net.sim.run_until(duration::seconds(15));
  EXPECT_GE(net.clients[0]->peer_count(), 1u);
  EXPECT_GE(net.clients[3]->peer_count(), 1u);
}

TEST(Gossip, UnregisteredServiceAgesOutEverywhere) {
  GossipConfig cfg;
  cfg.cache_entry_ttl = duration::seconds(6);
  GossipNet net{4, cfg};
  const ServiceId id = net.clients[3]->register_service(svc(), duration::seconds(600));
  net.sim.run_until(duration::seconds(12));
  EXPECT_GE(net.clients[0]->cache_size(), 1u);
  net.clients[3]->unregister_service(id);
  // No fresh copies gossip any more; caches must empty within the TTL.
  net.sim.run_until(duration::seconds(30));
  EXPECT_EQ(net.clients[0]->cache_size(), 0u);
  std::vector<ServiceRecord> found{ServiceRecord{}};
  net.clients[0]->query(wants(), [&](std::vector<ServiceRecord> r) { found = r; }, 4,
                        duration::seconds(1));
  net.sim.run_until(net.sim.now() + duration::millis(10));
  EXPECT_TRUE(found.empty());
}

TEST(Gossip, DeadSupplierAgesOut) {
  GossipConfig cfg;
  cfg.cache_entry_ttl = duration::seconds(6);
  GossipNet net{4, cfg};
  net.clients[3]->register_service(svc(), duration::seconds(600));
  net.sim.run_until(duration::seconds(12));
  net.world.kill(net.nodes[3]);
  net.sim.run_until(duration::seconds(30));
  EXPECT_EQ(net.clients[0]->cache_size(), 0u);
}

TEST(Gossip, TrafficIndependentOfQueryRate) {
  GossipNet net{4};
  net.clients[3]->register_service(svc(), duration::seconds(600));
  net.sim.run_until(duration::seconds(10));

  net.world.reset_stats();
  net.sim.run_until(duration::seconds(20));
  const auto frames_idle = net.world.stats().frames_sent;

  net.world.reset_stats();
  for (int i = 0; i < 100; ++i) {
    net.sim.schedule_after(duration::millis(i * 90), [&] {
      net.clients[0]->query(wants(), [](std::vector<ServiceRecord>) {}, 4,
                            duration::seconds(1));
    });
  }
  net.sim.run_until(duration::seconds(30));
  const auto frames_busy = net.world.stats().frames_sent;
  // 100 queries cost zero extra frames (both windows carry only gossip).
  EXPECT_NEAR(static_cast<double>(frames_busy), static_cast<double>(frames_idle),
              static_cast<double>(frames_idle) * 0.2);
}

TEST(Gossip, FreshestCopyWins) {
  GossipNet net{3};
  net.clients[2]->register_service(svc(), duration::seconds(600));
  net.sim.run_until(duration::seconds(10));
  // Capture the cached stamp, run longer: the cache entry must refresh
  // (newer `registered`) rather than stay frozen at first sighting.
  std::vector<ServiceRecord> first;
  net.clients[0]->query(wants(), [&](std::vector<ServiceRecord> r) { first = r; }, 4,
                        duration::seconds(1));
  net.sim.run_until(net.sim.now() + duration::millis(10));
  ASSERT_EQ(first.size(), 1u);
  net.sim.run_until(duration::seconds(30));
  std::vector<ServiceRecord> later;
  net.clients[0]->query(wants(), [&](std::vector<ServiceRecord> r) { later = r; }, 4,
                        duration::seconds(1));
  net.sim.run_until(net.sim.now() + duration::millis(10));
  ASSERT_EQ(later.size(), 1u);
  EXPECT_GT(later[0].registered, first[0].registered);
}

TEST(Gossip, FanoutLargerThanPeerSetIsSafe) {
  GossipConfig cfg;
  cfg.fanout = 10;  // more than the 1-2 peers each node knows
  GossipNet net{3, cfg};
  net.clients[2]->register_service(svc(), duration::seconds(600));
  net.sim.run_until(duration::seconds(10));
  EXPECT_GE(net.clients[0]->cache_size(), 1u);
  EXPECT_GE(net.clients[1]->cache_size(), 1u);
}

// Audit pin (ISSUE 10 satellite): lease expiry and cache TTL are distinct
// clocks, and match_known honours the lease on cached copies. A provider
// that dies stops renewing its lease; once that lease lapses, queries must
// come back empty on every node even though the cache TTL — much longer —
// has not aged the entry out yet. (consider() rejects rec.expired(now) on
// both the local_ and cache_ paths; this pins the cache path.)
TEST(Gossip, ExpiredLeaseRejectedLongBeforeCacheTtl) {
  GossipConfig cfg;
  cfg.cache_entry_ttl = duration::seconds(600);  // TTL alone would keep it
  GossipNet net{4, cfg};
  net.clients[3]->register_service(svc(), duration::seconds(5));
  net.sim.run_until(duration::seconds(10));
  ASSERT_GE(net.clients[0]->cache_size(), 1u);  // spread while renewed

  // The provider goes silent: the lease stops being renewed and runs out.
  net.world.kill(net.nodes[3]);
  net.sim.run_until(duration::seconds(20));

  std::vector<ServiceRecord> found{ServiceRecord{}};
  net.clients[0]->query(wants(), [&](std::vector<ServiceRecord> r) { found = r; }, 4,
                        duration::seconds(1));
  net.sim.run_until(net.sim.now() + duration::millis(10));
  EXPECT_TRUE(found.empty()) << "expired-lease record served from cache";
  // Well inside the cache TTL: only the lease can have disqualified it.
  ASSERT_LT(net.sim.now(), duration::seconds(600));
}

TEST(Gossip, OwnServicesNeverEnterOwnCache) {
  GossipNet net{3};
  net.clients[0]->register_service(svc(), duration::seconds(600));
  net.sim.run_until(duration::seconds(15));
  // Node 0's record lives in local_, not cache_ (authoritative copy).
  EXPECT_EQ(net.clients[0]->cache_size(), 0u);
  std::vector<ServiceRecord> found;
  net.clients[0]->query(wants(), [&](std::vector<ServiceRecord> r) { found = r; }, 4,
                        duration::seconds(1));
  net.sim.run_until(net.sim.now() + duration::millis(10));
  EXPECT_EQ(found.size(), 1u);  // still discoverable locally
}

}  // namespace
}  // namespace ndsm::discovery
