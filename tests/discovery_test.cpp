#include <gtest/gtest.h>

#include "discovery/adaptive.hpp"
#include "discovery/centralized.hpp"
#include "discovery/directory_server.hpp"
#include "discovery/distributed.hpp"
#include "test_helpers.hpp"

namespace ndsm::discovery {
namespace {

using serialize::Value;
using testing::Lan;
using testing::WirelessGrid;

qos::SupplierQos sensor_service(const std::string& type = "temperature") {
  qos::SupplierQos s;
  s.service_type = type;
  s.attributes = {{"unit", Value{"celsius"}}, {"rate_hz", Value{10}}};
  s.reliability = 0.9;
  return s;
}

qos::ConsumerQos wants(const std::string& type = "temperature") {
  qos::ConsumerQos c;
  c.service_type = type;
  return c;
}

TEST(Record, CodecRoundTrip) {
  ServiceRecord rec;
  rec.id = ServiceId{77};
  rec.provider = NodeId{3};
  rec.qos = sensor_service();
  rec.registered = 1000;
  rec.expires = 2000;
  serialize::Writer w;
  rec.encode(w);
  serialize::Reader r{w.data()};
  const auto decoded = ServiceRecord::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, rec.id);
  EXPECT_EQ(decoded->provider, rec.provider);
  EXPECT_EQ(decoded->qos.service_type, "temperature");
  EXPECT_EQ(decoded->expires, 2000);
}

TEST(Record, ExpiryCheck) {
  ServiceRecord rec;
  rec.expires = 100;
  EXPECT_FALSE(rec.expired(100));
  EXPECT_TRUE(rec.expired(101));
  rec.expires = kTimeNever;
  EXPECT_FALSE(rec.expired(INT64_MAX - 1));
}

TEST(Messages, QueryRoundTrip) {
  QueryMessage q;
  q.query_id = 42;
  q.reply_to = NodeId{5};
  q.reply_port = transport::ports::kDiscoveryReplyCent;
  q.consumer = wants();
  q.max_results = 3;
  const Bytes frame = encode_query(q);
  EXPECT_EQ(peek_kind(frame), MsgKind::kQuery);
  serialize::Reader r{frame};
  (void)r.u8();
  const auto decoded = decode_query(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->query_id, 42u);
  EXPECT_EQ(decoded->reply_to, NodeId{5});
  EXPECT_EQ(decoded->max_results, 3u);
  EXPECT_EQ(decoded->consumer.service_type, "temperature");
}

TEST(Messages, PeekKindRejectsGarbage) {
  EXPECT_FALSE(peek_kind(Bytes{}).has_value());
  EXPECT_FALSE(peek_kind(Bytes{0}).has_value());
  EXPECT_FALSE(peek_kind(Bytes{200}).has_value());
}

struct CentralizedSetup : Lan {
  // Node 0 is the directory; nodes 1..n-1 are clients.
  explicit CentralizedSetup(std::size_t n) : Lan(n) {
    server = std::make_unique<DirectoryServer>(transport(0));
    for (std::size_t i = 1; i < n; ++i) {
      clients.push_back(std::make_unique<CentralizedDiscovery>(
          transport(i), std::vector<NodeId>{nodes[0]}));
    }
  }
  std::unique_ptr<DirectoryServer> server;
  std::vector<std::unique_ptr<CentralizedDiscovery>> clients;
};

TEST(Centralized, RegisterThenQuery) {
  CentralizedSetup setup{3};
  setup.clients[0]->register_service(sensor_service(), duration::seconds(60));
  setup.sim.run_until(duration::seconds(1));
  EXPECT_EQ(setup.server->record_count(), 1u);

  std::vector<ServiceRecord> found;
  setup.clients[1]->query(wants(), [&](std::vector<ServiceRecord> recs) { found = recs; }, 8,
                          duration::seconds(2));
  setup.sim.run_until(duration::seconds(3));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].provider, setup.nodes[1]);
  EXPECT_EQ(found[0].qos.service_type, "temperature");
}

TEST(Centralized, QueryNoMatchReturnsEmpty) {
  CentralizedSetup setup{3};
  setup.clients[0]->register_service(sensor_service(), duration::seconds(60));
  setup.sim.run_until(duration::seconds(1));
  bool called = false;
  std::vector<ServiceRecord> found{ServiceRecord{}};
  setup.clients[1]->query(wants("humidity"),
                          [&](std::vector<ServiceRecord> recs) {
                            called = true;
                            found = recs;
                          },
                          8, duration::seconds(2));
  setup.sim.run_until(duration::seconds(3));
  EXPECT_TRUE(called);
  EXPECT_TRUE(found.empty());
}

TEST(Centralized, UnregisterRemoves) {
  CentralizedSetup setup{2};
  const ServiceId id = setup.clients[0]->register_service(sensor_service(), kTimeNever);
  setup.sim.run_until(duration::seconds(1));
  EXPECT_EQ(setup.server->record_count(), 1u);
  setup.clients[0]->unregister_service(id);
  setup.sim.run_until(duration::seconds(2));
  EXPECT_EQ(setup.server->record_count(), 0u);
}

TEST(Centralized, LeaseExpiresWithoutRenewal) {
  CentralizedSetup setup{2};
  setup.clients[0]->register_service(sensor_service(), duration::seconds(10));
  setup.sim.run_until(duration::seconds(1));
  EXPECT_EQ(setup.server->record_count(), 1u);
  // Kill the client so it cannot renew; the directory must age the record out.
  setup.world.kill(setup.nodes[1]);
  setup.sim.run_until(duration::seconds(30));
  EXPECT_EQ(setup.server->record_count(), 0u);
}

TEST(Centralized, LeaseRenewalKeepsAlive) {
  CentralizedSetup setup{2};
  setup.clients[0]->register_service(sensor_service(), duration::seconds(10));
  setup.sim.run_until(duration::seconds(60));  // several lease periods
  EXPECT_EQ(setup.server->record_count(), 1u);
}

TEST(Centralized, MaxResultsHonoured) {
  CentralizedSetup setup{2};
  for (int i = 0; i < 10; ++i) {
    setup.clients[0]->register_service(sensor_service(), duration::seconds(60));
  }
  setup.sim.run_until(duration::seconds(1));
  std::vector<ServiceRecord> found;
  setup.clients[0]->query(wants(), [&](std::vector<ServiceRecord> recs) { found = recs; }, 3,
                          duration::seconds(2));
  setup.sim.run_until(duration::seconds(3));
  EXPECT_EQ(found.size(), 3u);
}

TEST(Centralized, BestMatchRankedFirst) {
  CentralizedSetup setup{3};
  auto low = sensor_service();
  low.reliability = 0.5;
  auto high = sensor_service();
  high.reliability = 0.99;
  setup.clients[0]->register_service(low, duration::seconds(60));
  setup.clients[1]->register_service(high, duration::seconds(60));
  setup.sim.run_until(duration::seconds(1));
  std::vector<ServiceRecord> found;
  setup.clients[0]->query(wants(), [&](std::vector<ServiceRecord> recs) { found = recs; }, 8,
                          duration::seconds(2));
  setup.sim.run_until(duration::seconds(3));
  ASSERT_EQ(found.size(), 2u);
  EXPECT_DOUBLE_EQ(found[0].qos.reliability, 0.99);
}

TEST(Mirroring, MutationsReplicateToMirrors) {
  Lan lan{4};
  DirectoryServer primary{lan.transport(0)};
  DirectoryServer mirror1{lan.transport(1)};
  DirectoryServer mirror2{lan.transport(2)};
  primary.set_mirrors({lan.nodes[1], lan.nodes[2]});

  CentralizedDiscovery client{lan.transport(3), {lan.nodes[0]}};
  const ServiceId id = client.register_service(sensor_service(), kTimeNever);
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(primary.record_count(), 1u);
  EXPECT_EQ(mirror1.record_count(), 1u);
  EXPECT_EQ(mirror2.record_count(), 1u);

  client.unregister_service(id);
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(primary.record_count(), 0u);
  EXPECT_EQ(mirror1.record_count(), 0u);
  EXPECT_EQ(mirror2.record_count(), 0u);
}

TEST(Mirroring, RoundRobinSpreadsQueries) {
  Lan lan{4};
  DirectoryServer primary{lan.transport(0)};
  DirectoryServer mirror{lan.transport(1)};
  primary.set_mirrors({lan.nodes[1]});
  CentralizedDiscovery client{lan.transport(3), {lan.nodes[0], lan.nodes[1]},
                              MirrorPolicy::kRoundRobin};
  client.register_service(sensor_service(), kTimeNever);
  lan.sim.run_until(duration::seconds(1));
  for (int i = 0; i < 10; ++i) {
    client.query(wants(), [](std::vector<ServiceRecord>) {}, 8, duration::seconds(1));
  }
  lan.sim.run_until(duration::seconds(5));
  EXPECT_EQ(primary.stats().queries, 5u);
  EXPECT_EQ(mirror.stats().queries, 5u);
}

TEST(Mirroring, NearestPolicyPicksClosest) {
  Lan lan{4};  // positions x = 0, 10, 20, 30
  DirectoryServer primary{lan.transport(0)};
  DirectoryServer mirror{lan.transport(2)};
  primary.set_mirrors({lan.nodes[2]});
  CentralizedDiscovery client{lan.transport(3), {lan.nodes[0], lan.nodes[2]},
                              MirrorPolicy::kNearest};
  client.register_service(sensor_service(), kTimeNever);
  lan.sim.run_until(duration::seconds(1));
  for (int i = 0; i < 4; ++i) {
    client.query(wants(), [](std::vector<ServiceRecord>) {}, 8, duration::seconds(1));
  }
  lan.sim.run_until(duration::seconds(5));
  EXPECT_EQ(mirror.stats().queries, 4u);  // node 2 at x=20 is nearest to x=30
  EXPECT_EQ(primary.stats().queries, 0u);
}

struct DistributedSetup : WirelessGrid {
  explicit DistributedSetup(std::size_t n, DistributedConfig cfg = {})
      : WirelessGrid(n, 20.0, 42, 1e9) {
    with_routers<routing::FloodingRouter>();
    for (std::size_t i = 0; i < n; ++i) {
      clients.push_back(std::make_unique<DistributedDiscovery>(transport(i), cfg));
    }
  }
  std::vector<std::unique_ptr<DistributedDiscovery>> clients;
};

TEST(Distributed, FloodedQueryFindsRemoteService) {
  DistributedSetup setup{9};
  setup.clients[8]->register_service(sensor_service(), duration::seconds(60));
  std::vector<ServiceRecord> found;
  setup.clients[0]->query(wants(), [&](std::vector<ServiceRecord> recs) { found = recs; }, 8,
                          duration::seconds(2));
  setup.sim.run_until(duration::seconds(3));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].provider, setup.nodes[8]);
}

TEST(Distributed, CollectsFromMultipleSuppliers) {
  DistributedSetup setup{9};
  for (const std::size_t i : {2u, 5u, 7u}) {
    setup.clients[i]->register_service(sensor_service(), duration::seconds(60));
  }
  std::vector<ServiceRecord> found;
  setup.clients[0]->query(wants(), [&](std::vector<ServiceRecord> recs) { found = recs; }, 8,
                          duration::seconds(2));
  setup.sim.run_until(duration::seconds(3));
  EXPECT_EQ(found.size(), 3u);
}

TEST(Distributed, TimeoutWithNoSuppliers) {
  DistributedSetup setup{4};
  bool called = false;
  std::vector<ServiceRecord> found{ServiceRecord{}};
  setup.clients[0]->query(wants(),
                          [&](std::vector<ServiceRecord> recs) {
                            called = true;
                            found = recs;
                          },
                          8, duration::seconds(1));
  setup.sim.run_until(duration::seconds(2));
  EXPECT_TRUE(called);
  EXPECT_TRUE(found.empty());
}

TEST(Distributed, EarlyCompletionAtMaxResults) {
  DistributedSetup setup{9};
  for (std::size_t i = 1; i < 9; ++i) {
    setup.clients[i]->register_service(sensor_service(), duration::seconds(60));
  }
  Time answered_at = -1;
  setup.clients[0]->query(wants(),
                          [&](std::vector<ServiceRecord> recs) {
                            answered_at = setup.sim.now();
                            EXPECT_EQ(recs.size(), 2u);
                          },
                          /*max_results=*/2, /*timeout=*/duration::seconds(10));
  setup.sim.run_until(duration::seconds(11));
  ASSERT_GE(answered_at, 0);
  EXPECT_LT(answered_at, duration::seconds(10));  // finished before the timeout
}

TEST(Distributed, LocalServiceAnsweredLocally) {
  DistributedSetup setup{4};
  setup.clients[0]->register_service(sensor_service(), duration::seconds(60));
  std::vector<ServiceRecord> found;
  setup.clients[0]->query(wants(), [&](std::vector<ServiceRecord> recs) { found = recs; }, 8,
                          duration::seconds(1));
  setup.sim.run_until(duration::seconds(2));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].provider, setup.nodes[0]);
}

TEST(Distributed, AdvertisementsFillCaches) {
  DistributedConfig cfg;
  cfg.advertise_period = duration::seconds(2);
  DistributedSetup setup{9, cfg};
  setup.clients[8]->register_service(sensor_service(), duration::seconds(60));
  setup.sim.run_until(duration::seconds(5));
  EXPECT_GE(setup.clients[0]->cache_size(), 1u);
  // Query is now answered from cache without flooding.
  const auto floods_before = setup.router(0).stats().data_sent;
  std::vector<ServiceRecord> found;
  setup.clients[0]->query(wants(), [&](std::vector<ServiceRecord> recs) { found = recs; }, 8,
                          duration::seconds(2));
  setup.sim.run_until(duration::seconds(8));
  EXPECT_EQ(found.size(), 1u);
  EXPECT_EQ(setup.router(0).stats().data_sent, floods_before);
}

TEST(Distributed, StaleCacheEntriesIgnored) {
  DistributedConfig cfg;
  cfg.advertise_period = duration::seconds(2);
  cfg.cache_entry_ttl = duration::seconds(5);
  DistributedSetup setup{4, cfg};
  setup.clients[3]->register_service(sensor_service(), duration::seconds(600));
  setup.sim.run_until(duration::seconds(4));
  EXPECT_GE(setup.clients[0]->cache_size(), 1u);
  // Supplier dies; its cached advertisement goes stale after the TTL and
  // queries fall back to flooding (which finds nothing).
  setup.world.kill(setup.nodes[3]);
  setup.sim.run_until(duration::seconds(20));
  std::vector<ServiceRecord> found{ServiceRecord{}};
  setup.clients[0]->query(wants(), [&](std::vector<ServiceRecord> recs) { found = recs; }, 8,
                          duration::seconds(2));
  setup.sim.run_until(duration::seconds(25));
  EXPECT_TRUE(found.empty());
}

TEST(Adaptive, StartsDistributedSwitchesUnderQueryLoad) {
  Lan lan{4};
  DirectoryServer server{lan.transport(0)};
  AdaptiveConfig cfg;
  cfg.evaluation_period = duration::seconds(2);
  AdaptiveDiscovery adaptive{lan.transport(1), {lan.nodes[0]}, cfg,
                             /*density=*/[] { return 64.0; }};
  DistributedDiscovery remote_supplier{lan.transport(2)};
  remote_supplier.register_service(sensor_service(), duration::seconds(600));

  EXPECT_EQ(adaptive.mode(), DiscoveryMode::kDistributed);
  // Sustained query traffic on a dense network: flooding is expensive,
  // policy must switch to centralized.
  for (int round = 0; round < 10; ++round) {
    lan.sim.schedule_at(duration::seconds(round), [&] {
      for (int q = 0; q < 6; ++q) {
        adaptive.query(wants(), [](std::vector<ServiceRecord>) {}, 4,
                       duration::millis(500));
      }
    });
  }
  lan.sim.run_until(duration::seconds(30));
  EXPECT_EQ(adaptive.mode(), DiscoveryMode::kCentralized);
  EXPECT_GE(adaptive.mode_switches(), 1u);
  EXPECT_GT(adaptive.query_rate_per_s(), 0.0);
}

TEST(Adaptive, StaysDistributedWhenChurnDominates) {
  Lan lan{4};
  DirectoryServer server{lan.transport(0)};
  AdaptiveConfig cfg;
  cfg.evaluation_period = duration::seconds(2);
  AdaptiveDiscovery adaptive{lan.transport(1), {lan.nodes[0]}, cfg,
                             /*density=*/[] { return 4.0; }};
  // Heavy churn, almost no queries: distributed (registration-free) wins.
  for (int round = 0; round < 20; ++round) {
    lan.sim.schedule_at(duration::seconds(round), [&] {
      const ServiceId id = adaptive.register_service(sensor_service(), duration::seconds(30));
      lan.sim.schedule_after(duration::millis(500),
                             [&adaptive, id] { adaptive.unregister_service(id); });
    });
  }
  lan.sim.run_until(duration::seconds(25));
  EXPECT_EQ(adaptive.mode(), DiscoveryMode::kDistributed);
}

TEST(Adaptive, RegistrationsSurviveModeSwitch) {
  Lan lan{4};
  DirectoryServer server{lan.transport(0)};
  AdaptiveConfig cfg;
  cfg.evaluation_period = duration::seconds(1);
  AdaptiveDiscovery supplier{lan.transport(1), {lan.nodes[0]}, cfg,
                             [] { return 64.0; }};
  AdaptiveDiscovery consumer{lan.transport(2), {lan.nodes[0]}, cfg,
                             [] { return 64.0; }};
  supplier.register_service(sensor_service(), duration::seconds(600));

  // Drive the consumer into centralized mode with query load.
  for (int round = 0; round < 12; ++round) {
    lan.sim.schedule_at(duration::seconds(round), [&] {
      for (int q = 0; q < 6; ++q) {
        consumer.query(wants(), [](std::vector<ServiceRecord>) {}, 4, duration::millis(500));
      }
      // Light supplier traffic so its policy also re-evaluates.
      supplier.query(wants(), [](std::vector<ServiceRecord>) {}, 1, duration::millis(500));
    });
  }
  lan.sim.run_until(duration::seconds(20));
  ASSERT_EQ(consumer.mode(), DiscoveryMode::kCentralized);
  // After the supplier also switched, its service must be findable through
  // the directory.
  std::vector<ServiceRecord> found;
  consumer.query(wants(), [&](std::vector<ServiceRecord> recs) { found = recs; }, 8,
                 duration::seconds(2));
  lan.sim.run_until(duration::seconds(25));
  EXPECT_EQ(found.size(), 1u);
}

TEST(Adaptive, SecuredServiceEndToEnd) {
  // Password-gated matching through a full register/query cycle (§3.3
  // "security ... incorporated into the matching protocol").
  CentralizedSetup setup{3};
  auto secured = sensor_service();
  secured.set_password("sesame");
  setup.clients[0]->register_service(secured, duration::seconds(60));
  setup.sim.run_until(duration::seconds(1));

  std::vector<ServiceRecord> no_pw;
  setup.clients[1]->query(wants(), [&](std::vector<ServiceRecord> r) { no_pw = r; }, 8,
                          duration::seconds(1));
  setup.sim.run_until(duration::seconds(2));
  EXPECT_TRUE(no_pw.empty());

  auto c = wants();
  c.password = "sesame";
  std::vector<ServiceRecord> with_pw;
  setup.clients[1]->query(c, [&](std::vector<ServiceRecord> r) { with_pw = r; }, 8,
                          duration::seconds(1));
  setup.sim.run_until(duration::seconds(4));
  EXPECT_EQ(with_pw.size(), 1u);
}

}  // namespace
}  // namespace ndsm::discovery
