#include <gtest/gtest.h>

#include <sstream>

#include "discovery/centralized.hpp"
#include "discovery/directory_server.hpp"
#include "test_helpers.hpp"
#include "transactions/rpc.hpp"

namespace ndsm::node {
namespace {

using testing::Lan;
using testing::WirelessGrid;

// --- basic lifecycle --------------------------------------------------------

TEST(NodeRuntime, BringsUpFullStack) {
  Lan lan{2};
  Runtime& rt = lan.runtime(0);
  EXPECT_TRUE(rt.up());
  EXPECT_NE(rt.router_ptr(), nullptr);
  EXPECT_NE(rt.transport_ptr(), nullptr);
  EXPECT_TRUE(lan.world.alive(rt.id()));
}

TEST(NodeRuntime, CrashTearsDownAndRestartRebuilds) {
  Lan lan{2};
  Runtime& rt = lan.runtime(1);
  rt.crash();
  EXPECT_FALSE(rt.up());
  EXPECT_EQ(rt.router_ptr(), nullptr);
  EXPECT_EQ(rt.transport_ptr(), nullptr);
  EXPECT_FALSE(lan.world.alive(rt.id()));
  EXPECT_EQ(rt.stats().crashes, 1u);

  rt.restart();
  EXPECT_TRUE(rt.up());
  EXPECT_NE(rt.transport_ptr(), nullptr);
  EXPECT_TRUE(lan.world.alive(rt.id()));
  EXPECT_EQ(rt.stats().restarts, 1u);

  // The rebuilt stack moves data.
  Bytes got;
  rt.transport().set_receiver(transport::ports::kApp,
                              [&](NodeId, const Bytes& b) { got = b; });
  ASSERT_TRUE(
      lan.transport(0).send(rt.id(), transport::ports::kApp, to_bytes("back")).is_ok());
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(to_string(got), "back");
}

TEST(NodeRuntime, CrashAndRestartAreIdempotent) {
  Lan lan{1};
  Runtime& rt = lan.runtime(0);
  rt.restart();  // no-op while up
  EXPECT_EQ(rt.stats().restarts, 0u);
  rt.crash();
  rt.crash();  // no-op while down
  EXPECT_EQ(rt.stats().crashes, 1u);
  rt.restart();
  EXPECT_TRUE(rt.up());
}

TEST(NodeRuntime, SendWhileCrashedFailsCleanly) {
  Lan lan{2};
  lan.runtime(1).crash();
  Status result = Status::ok();
  lan.transport(0).send(lan.nodes[1], transport::ports::kApp, to_bytes("void"),
                        [&](Status s) { result = s; });
  lan.sim.run_until(duration::minutes(2));
  EXPECT_FALSE(result.is_ok());
}

// --- the service container --------------------------------------------------

TEST(NodeRuntime, ServicesRebuiltByRestartInOrder) {
  Lan lan{2};
  Runtime& rt = lan.runtime(0);
  std::vector<std::string> started;
  rt.add_service<transactions::RpcEndpoint>("rpc", [&](Runtime& r) {
    started.push_back("rpc");
    return std::make_unique<transactions::RpcEndpoint>(r.transport());
  });
  rt.add_service<discovery::CentralizedDiscovery>("disco", [&](Runtime& r) {
    started.push_back("disco");
    return std::make_unique<discovery::CentralizedDiscovery>(
        r.transport(), std::vector<NodeId>{r.id()});
  });
  ASSERT_EQ(started, (std::vector<std::string>{"rpc", "disco"}));
  EXPECT_EQ(rt.service_count(), 2u);
  EXPECT_NE(rt.service<transactions::RpcEndpoint>("rpc"), nullptr);

  rt.crash();
  EXPECT_EQ(rt.service<transactions::RpcEndpoint>("rpc"), nullptr);  // instance gone
  EXPECT_EQ(rt.service_count(), 2u);                                 // recipe kept

  rt.restart();
  ASSERT_EQ(started.size(), 4u);  // both factories ran again...
  EXPECT_EQ(started[2], "rpc");   // ...in registration order
  EXPECT_EQ(started[3], "disco");
  EXPECT_NE(rt.service<transactions::RpcEndpoint>("rpc"), nullptr);
  EXPECT_EQ(rt.stats().service_starts, 4u);
  EXPECT_EQ(rt.stats().service_stops, 2u);
}

TEST(NodeRuntime, RemoveServiceStopsIt) {
  Lan lan{1};
  Runtime& rt = lan.runtime(0);
  rt.emplace_service<transactions::RpcEndpoint>("rpc");
  rt.remove_service("rpc");
  EXPECT_EQ(rt.service_count(), 0u);
  EXPECT_EQ(rt.service<transactions::RpcEndpoint>("rpc"), nullptr);
  // The port is free again: a new endpoint binds without tripping the
  // duplicate-bind check.
  rt.emplace_service<transactions::RpcEndpoint>("rpc2");
}

TEST(NodeRuntime, StorageSurvivesCrash) {
  Lan lan{1};
  Runtime& rt = lan.runtime(0);
  rt.storage("disk").append(to_bytes("v"));
  rt.crash();
  rt.restart();
  ASSERT_EQ(rt.storage("disk").size(), 1u);
  EXPECT_EQ(to_string(rt.storage("disk").read(0)), "v");
}

// --- directory server WAL rehydration (§3.8) --------------------------------

TEST(NodeRuntime, DirectoryServerRehydratesFromWal) {
  Lan lan{3};
  Runtime& dir_rt = lan.runtime(0);
  // The directory journals every mutation to the runtime's stable
  // storage; its factory hands the same volume to every incarnation.
  dir_rt.add_service<discovery::DirectoryServer>("directory", [](Runtime& r) {
    return std::make_unique<discovery::DirectoryServer>(
        r.transport(), duration::seconds(1), &r.storage("directory"));
  });
  auto& supplier = lan.runtime(1).emplace_service<discovery::CentralizedDiscovery>(
      "disco", std::vector<NodeId>{lan.nodes[0]});
  auto& consumer = lan.runtime(2).emplace_service<discovery::CentralizedDiscovery>(
      "disco", std::vector<NodeId>{lan.nodes[0]});

  qos::SupplierQos s;
  s.service_type = "camera";
  supplier.register_service(s, duration::minutes(10));
  s.service_type = "printer";
  supplier.register_service(s, duration::minutes(10));
  lan.sim.run_until(duration::seconds(2));
  {
    auto* directory = dir_rt.service<discovery::DirectoryServer>("directory");
    ASSERT_NE(directory, nullptr);
    ASSERT_EQ(directory->record_count(), 2u);
    EXPECT_EQ(directory->stats().records_rehydrated, 0u);
  }

  // The directory node dies and reboots. No supplier re-registers.
  dir_rt.crash();
  lan.sim.run_until(duration::seconds(3));
  dir_rt.restart();
  auto* reborn = dir_rt.service<discovery::DirectoryServer>("directory");
  ASSERT_NE(reborn, nullptr);
  EXPECT_EQ(reborn->stats().records_rehydrated, 2u);
  EXPECT_EQ(reborn->record_count(), 2u);

  // The rehydrated records answer queries.
  std::size_t found = 0;
  lan.sim.schedule_after(duration::millis(100), [&] {
    qos::ConsumerQos want;
    want.service_type = "camera";
    consumer.query(want,
                   [&](std::vector<discovery::ServiceRecord> records) {
                     found = records.size();
                   },
                   4, duration::seconds(2));
  });
  lan.sim.run_until(duration::seconds(6));
  EXPECT_EQ(found, 1u);
}

TEST(NodeRuntime, DirectoryWalDropsUnregisteredAndExpired) {
  Lan lan{2};
  Runtime& dir_rt = lan.runtime(0);
  dir_rt.add_service<discovery::DirectoryServer>("directory", [](Runtime& r) {
    return std::make_unique<discovery::DirectoryServer>(
        r.transport(), duration::seconds(1), &r.storage("directory"));
  });
  auto& disco = lan.runtime(1).emplace_service<discovery::CentralizedDiscovery>(
      "disco", std::vector<NodeId>{lan.nodes[0]});

  qos::SupplierQos s;
  s.service_type = "ephemeral";
  disco.register_service(s, duration::seconds(2));  // short lease
  s.service_type = "kept";
  disco.register_service(s, duration::minutes(10));
  s.service_type = "dropped";
  const auto dropped = disco.register_service(s, duration::minutes(10));
  lan.sim.run_until(duration::seconds(1));
  disco.unregister_service(dropped);
  lan.sim.run_until(duration::seconds(2));
  // The supplier dies, so "ephemeral" stops being renewed at half-life
  // and its lease lapses; "kept" has minutes left on the clock.
  lan.runtime(1).crash();
  lan.sim.run_until(duration::seconds(10));

  dir_rt.crash();
  dir_rt.restart();
  auto* reborn = dir_rt.service<discovery::DirectoryServer>("directory");
  ASSERT_NE(reborn, nullptr);
  // Only "kept" comes back: the unregister was journalled, the expired
  // lease is filtered at replay.
  EXPECT_EQ(reborn->record_count(), 1u);
  const auto records = reborn->snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].qos.service_type, "kept");
}

// --- determinism under churn ------------------------------------------------

// One simulated deployment: 100 nodes on a shared segment, every node
// streams to a fixed partner, and 20 nodes crash and restart mid-run.
// Returns a byte dump of every counter the run produced.
std::string churn_run(std::uint64_t seed) {
  // A lossy segment makes the run exercise the RNG (retransmissions,
  // dropped frames), so the dump is genuinely seed-sensitive.
  net::LinkSpec spec = net::ethernet100();
  spec.loss_probability = 0.05;
  Lan lan{100, seed, spec};
  std::vector<std::uint64_t> delivered(lan.nodes.size(), 0);
  for (std::size_t i = 0; i < lan.nodes.size(); ++i) {
    lan.transport(i).set_receiver(transport::ports::kApp,
                                  [&delivered, i](NodeId, const Bytes&) { delivered[i]++; });
  }
  // Every 500 ms each live node sends 64 B to its partner. Receivers are
  // rebound on restart (crash drops the whole stack, handlers included).
  sim::PeriodicTimer traffic{lan.sim, duration::millis(500), [&] {
    for (std::size_t i = 0; i < lan.nodes.size(); ++i) {
      Runtime& rt = lan.runtime(i);
      if (!rt.up()) continue;
      rt.transport().send(lan.nodes[(i + 37) % lan.nodes.size()],
                          transport::ports::kApp, Bytes(64, static_cast<std::uint8_t>(i)));
    }
  }};
  traffic.start();

  // Nodes 10..29 crash at staggered times and restart 3 s later, rebinding
  // their receiver on the fresh transport.
  for (std::size_t k = 0; k < 20; ++k) {
    const std::size_t victim = 10 + k;
    const Time down_at = duration::seconds(5) + k * duration::millis(700);
    lan.sim.schedule_at(down_at, [&lan, victim] { lan.runtime(victim).crash(); });
    lan.sim.schedule_at(down_at + duration::seconds(3), [&lan, victim, &delivered] {
      Runtime& rt = lan.runtime(victim);
      rt.restart();
      rt.transport().set_receiver(
          transport::ports::kApp,
          [&delivered, victim](NodeId, const Bytes&) { delivered[victim]++; });
    });
  }

  lan.sim.run_until(duration::seconds(40));

  std::ostringstream out;
  // The event-order digest leads the dump: one value that witnesses the
  // whole (time, insertion-seq) execution sequence, so a divergence shows
  // up even for runs whose aggregate counters happen to collide.
  out << lan.sim.digest() << ':' << lan.sim.now() << ':' << lan.world.stats().frames_sent
      << ':' << lan.world.stats().bytes_on_wire << ':' << lan.world.stats().frames_delivered;
  for (std::size_t i = 0; i < lan.nodes.size(); ++i) {
    const auto& t = lan.transport(i).stats();
    const auto& r = lan.runtime(i).stats();
    out << '|' << delivered[i] << ',' << t.messages_sent << ',' << t.messages_delivered
        << ',' << t.messages_failed << ',' << t.retransmissions << ',' << t.fragments_sent
        << ',' << r.crashes << ',' << r.restarts << ',' << r.service_starts;
  }
  return out.str();
}

TEST(NodeRuntime, TwinRunsWithChurnAreByteIdentical) {
  const std::string first = churn_run(1234);
  const std::string second = churn_run(1234);
  EXPECT_EQ(first, second);
  // Sanity: the churn actually happened and traffic actually flowed.
  EXPECT_NE(first.find("|"), std::string::npos);
  const std::string different = churn_run(99);
  EXPECT_NE(first, different);  // the dump is sensitive to the run
}

}  // namespace
}  // namespace ndsm::node
