#include <gtest/gtest.h>

#include "discovery/directory_server.hpp"
#include "discovery/centralized.hpp"
#include "net/faults.hpp"
#include "test_helpers.hpp"
#include "transactions/bridge.hpp"
#include "transactions/events.hpp"
#include "transactions/manager.hpp"
#include "transactions/pubsub.hpp"
#include "transactions/rpc.hpp"
#include "transactions/tuple_space.hpp"

namespace ndsm::transactions {
namespace {

using serialize::Value;
using testing::Lan;

TEST(Rpc, CallAndResponse) {
  Lan lan{2};
  RpcEndpoint server{lan.transport(0)};
  RpcEndpoint client{lan.transport(1)};
  server.register_method("echo", [](NodeId, const Bytes& req) -> Result<Bytes> {
    Bytes out = req;
    out.push_back('!');
    return out;
  });
  std::string response;
  client.call(lan.nodes[0], "echo", to_bytes("hi"),
              [&](Result<Bytes> r) { response = r.is_ok() ? to_string(r.value()) : "ERR"; });
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(response, "hi!");
  EXPECT_EQ(server.stats().calls_served, 1u);
}

TEST(Rpc, UnknownMethodReturnsNotFound) {
  Lan lan{2};
  RpcEndpoint server{lan.transport(0)};
  RpcEndpoint client{lan.transport(1)};
  ErrorCode code = ErrorCode::kOk;
  client.call(lan.nodes[0], "nope", {}, [&](Result<Bytes> r) { code = r.code(); });
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(code, ErrorCode::kNotFound);
  EXPECT_EQ(server.stats().unknown_method, 1u);
}

TEST(Rpc, HandlerErrorPropagates) {
  Lan lan{2};
  RpcEndpoint server{lan.transport(0)};
  RpcEndpoint client{lan.transport(1)};
  server.register_method("fail", [](NodeId, const Bytes&) -> Result<Bytes> {
    return Status{ErrorCode::kInvalidArgument, "bad input"};
  });
  Status status;
  client.call(lan.nodes[0], "fail", {}, [&](Result<Bytes> r) { status = r.status(); });
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
}

TEST(Rpc, TimeoutWhenServerDead) {
  Lan lan{2};
  RpcEndpoint client{lan.transport(1)};
  lan.world.kill(lan.nodes[0]);
  ErrorCode code = ErrorCode::kOk;
  client.call(lan.nodes[0], "echo", {}, [&](Result<Bytes> r) { code = r.code(); },
              duration::millis(500));
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(code, ErrorCode::kTimeout);
  EXPECT_EQ(client.stats().timeouts, 1u);
}

TEST(Rpc, ConcurrentCallsRouteToRightCallbacks) {
  Lan lan{3};
  RpcEndpoint s0{lan.transport(0)};
  RpcEndpoint s1{lan.transport(1)};
  RpcEndpoint client{lan.transport(2)};
  s0.register_method("who", [](NodeId, const Bytes&) -> Result<Bytes> {
    return to_bytes("zero");
  });
  s1.register_method("who", [](NodeId, const Bytes&) -> Result<Bytes> {
    return to_bytes("one");
  });
  std::string a;
  std::string b;
  client.call(lan.nodes[0], "who", {}, [&](Result<Bytes> r) { a = to_string(r.value()); });
  client.call(lan.nodes[1], "who", {}, [&](Result<Bytes> r) { b = to_string(r.value()); });
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(a, "zero");
  EXPECT_EQ(b, "one");
}

TEST(Rpc, CallerIdentityVisibleToHandler) {
  Lan lan{2};
  RpcEndpoint server{lan.transport(0)};
  RpcEndpoint client{lan.transport(1)};
  NodeId seen = NodeId::invalid();
  server.register_method("id", [&](NodeId caller, const Bytes&) -> Result<Bytes> {
    seen = caller;
    return Bytes{};
  });
  client.call(lan.nodes[0], "id", {}, [](Result<Bytes>) {});
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(seen, lan.nodes[1]);
}

TEST(TopicMatch, ExactAndWildcard) {
  EXPECT_TRUE(topic_matches("a/b", "a/b"));
  EXPECT_FALSE(topic_matches("a/b", "a/c"));
  EXPECT_TRUE(topic_matches("a/*", "a/b"));
  EXPECT_TRUE(topic_matches("a/*", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/*", "b/x"));
  EXPECT_FALSE(topic_matches("a/*", "ab/x"));
  EXPECT_TRUE(topic_matches("*", "*"));  // '*' alone is a literal topic
}

struct PubSubSetup : Lan {
  PubSubSetup() : Lan(4), broker(transport(0)) {
    for (std::size_t i = 1; i < 4; ++i) {
      clients.push_back(std::make_unique<PubSubClient>(transport(i), nodes[0]));
    }
  }
  PubSubBroker broker;
  std::vector<std::unique_ptr<PubSubClient>> clients;
};

TEST(PubSub, PublishReachesSubscriber) {
  PubSubSetup setup;
  std::string got_topic;
  Bytes got_data;
  NodeId got_publisher;
  setup.clients[0]->subscribe("sensors/temp",
                              [&](const std::string& t, const Bytes& d, NodeId p) {
                                got_topic = t;
                                got_data = d;
                                got_publisher = p;
                              });
  setup.sim.run_until(duration::millis(100));
  setup.clients[1]->publish("sensors/temp", to_bytes("21.5"));
  setup.sim.run_until(duration::seconds(1));
  EXPECT_EQ(got_topic, "sensors/temp");
  EXPECT_EQ(to_string(got_data), "21.5");
  EXPECT_EQ(got_publisher, setup.nodes[2]);
}

TEST(PubSub, WildcardSubscription) {
  PubSubSetup setup;
  int got = 0;
  setup.clients[0]->subscribe("sensors/*", [&](const std::string&, const Bytes&, NodeId) {
    got++;
  });
  setup.sim.run_until(duration::millis(100));
  setup.clients[1]->publish("sensors/temp", {});
  setup.clients[1]->publish("sensors/humidity", {});
  setup.clients[1]->publish("actuators/valve", {});
  setup.sim.run_until(duration::seconds(1));
  EXPECT_EQ(got, 2);
}

TEST(PubSub, MultipleSubscribersAllReceive) {
  PubSubSetup setup;
  int a = 0;
  int b = 0;
  setup.clients[0]->subscribe("t", [&](const std::string&, const Bytes&, NodeId) { a++; });
  setup.clients[1]->subscribe("t", [&](const std::string&, const Bytes&, NodeId) { b++; });
  setup.sim.run_until(duration::millis(100));
  setup.clients[2]->publish("t", {});
  setup.sim.run_until(duration::seconds(1));
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(setup.broker.stats().deliveries, 2u);
}

TEST(PubSub, UnsubscribeStopsDelivery) {
  PubSubSetup setup;
  int got = 0;
  const SubscriptionId sub =
      setup.clients[0]->subscribe("t", [&](const std::string&, const Bytes&, NodeId) { got++; });
  setup.sim.run_until(duration::millis(100));
  setup.clients[1]->publish("t", {});
  setup.sim.run_until(duration::seconds(1));
  setup.clients[0]->unsubscribe(sub);
  setup.sim.run_until(duration::seconds(2));
  setup.clients[1]->publish("t", {});
  setup.sim.run_until(duration::seconds(3));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(setup.broker.subscription_count(), 0u);
}

TEST(PubSub, NoSubscriberCountsDrop) {
  PubSubSetup setup;
  setup.clients[0]->publish("nobody/listens", {});
  setup.sim.run_until(duration::seconds(1));
  EXPECT_EQ(setup.broker.stats().dropped_no_subscriber, 1u);
}

struct TupleSetup : Lan {
  TupleSetup() : Lan(4), server(transport(0)) {
    for (std::size_t i = 1; i < 4; ++i) {
      clients.push_back(std::make_unique<TupleSpaceClient>(transport(i), nodes[0]));
    }
  }
  TupleSpaceServer server;
  std::vector<std::unique_ptr<TupleSpaceClient>> clients;
};

TEST(TupleSpace, OutThenRdLeavesTuple) {
  TupleSetup setup;
  setup.clients[0]->out(Tuple{Value{"temp"}, Value{21}});
  setup.sim.run_until(duration::millis(500));
  EXPECT_EQ(setup.server.tuple_count(), 1u);

  bool found = false;
  Tuple got;
  setup.clients[1]->rd(Tuple{Value{"temp"}, Value::wildcard()},
                       [&](bool f, Tuple t) {
                         found = f;
                         got = std::move(t);
                       });
  setup.sim.run_until(duration::seconds(1));
  ASSERT_TRUE(found);
  EXPECT_EQ(got[1], Value{21});
  EXPECT_EQ(setup.server.tuple_count(), 1u);  // rd copies
}

TEST(TupleSpace, InRemovesTuple) {
  TupleSetup setup;
  setup.clients[0]->out(Tuple{Value{"job"}, Value{1}});
  setup.sim.run_until(duration::millis(500));
  bool found = false;
  setup.clients[1]->in(Tuple{Value{"job"}, Value::wildcard()},
                       [&](bool f, Tuple) { found = f; });
  setup.sim.run_until(duration::seconds(1));
  EXPECT_TRUE(found);
  EXPECT_EQ(setup.server.tuple_count(), 0u);
}

TEST(TupleSpace, NonBlockingMissReturnsNotFound) {
  TupleSetup setup;
  bool called = false;
  bool found = true;
  setup.clients[0]->rd(Tuple{Value{"absent"}},
                       [&](bool f, Tuple) {
                         called = true;
                         found = f;
                       },
                       /*blocking=*/false);
  setup.sim.run_until(duration::seconds(1));
  EXPECT_TRUE(called);
  EXPECT_FALSE(found);
  EXPECT_EQ(setup.server.stats().misses, 1u);
}

TEST(TupleSpace, BlockingInWokenByLaterOut) {
  TupleSetup setup;
  bool found = false;
  Time woken_at = -1;
  setup.clients[0]->in(Tuple{Value{"evt"}, Value::wildcard()},
                       [&](bool f, Tuple) {
                         found = f;
                         woken_at = setup.sim.now();
                       },
                       /*blocking=*/true, duration::seconds(30));
  setup.sim.run_until(duration::seconds(2));
  EXPECT_FALSE(found);
  EXPECT_EQ(setup.server.parked_count(), 1u);
  setup.clients[1]->out(Tuple{Value{"evt"}, Value{42}});
  setup.sim.run_until(duration::seconds(4));
  EXPECT_TRUE(found);
  EXPECT_GE(woken_at, duration::seconds(2));
  EXPECT_EQ(setup.server.parked_count(), 0u);
  EXPECT_EQ(setup.server.tuple_count(), 0u);  // consumed by the parked in
}

TEST(TupleSpace, BlockingTimeoutCancelsParkedRequest) {
  TupleSetup setup;
  bool called = false;
  bool found = true;
  setup.clients[0]->in(Tuple{Value{"never"}},
                       [&](bool f, Tuple) {
                         called = true;
                         found = f;
                       },
                       /*blocking=*/true, duration::seconds(1));
  setup.sim.run_until(duration::seconds(3));
  EXPECT_TRUE(called);
  EXPECT_FALSE(found);
  EXPECT_EQ(setup.server.parked_count(), 0u);  // cancel reached the server
}

TEST(TupleSpace, OneOutWakesOnlyOneTaker) {
  TupleSetup setup;
  int taken = 0;
  for (int i = 0; i < 2; ++i) {
    setup.clients[static_cast<std::size_t>(i)]->in(
        Tuple{Value{"once"}},
        [&](bool f, Tuple) {
          if (f) taken++;
        },
        /*blocking=*/true, duration::seconds(10));
  }
  setup.sim.run_until(duration::seconds(1));
  setup.clients[2]->out(Tuple{Value{"once"}});
  setup.sim.run_until(duration::seconds(12));
  EXPECT_EQ(taken, 1);
}

TEST(TupleSpace, RdParkedAllWake) {
  TupleSetup setup;
  int read = 0;
  for (int i = 0; i < 2; ++i) {
    setup.clients[static_cast<std::size_t>(i)]->rd(
        Tuple{Value{"bcast"}},
        [&](bool f, Tuple) {
          if (f) read++;
        },
        /*blocking=*/true, duration::seconds(10));
  }
  setup.sim.run_until(duration::seconds(1));
  setup.clients[2]->out(Tuple{Value{"bcast"}});
  setup.sim.run_until(duration::seconds(12));
  EXPECT_EQ(read, 2);
  EXPECT_EQ(setup.server.tuple_count(), 1u);  // rd does not consume
}

TEST(TupleSpace, OutAckConfirms) {
  TupleSetup setup;
  Status status{ErrorCode::kInternal, ""};
  setup.clients[0]->out(Tuple{Value{1}}, [&](Status s) { status = s; });
  setup.sim.run_until(duration::seconds(1));
  EXPECT_TRUE(status.is_ok());
}

TEST(Events, LocalSubscribersSeeEmissions) {
  Lan lan{2};
  EventChannel channel{lan.transport(0)};
  std::vector<std::string> seen;
  channel.subscribe_local("battery.low", [&](const Event& e) { seen.push_back(e.type); });
  channel.subscribe_local("", [&](const Event& e) { seen.push_back("any:" + e.type); });
  channel.emit("battery.low", Value{0.1});
  channel.emit("other", Value{});
  EXPECT_EQ(seen, (std::vector<std::string>{"battery.low", "any:battery.low", "any:other"}));
}

TEST(Events, RemoteAttachReceivesPush) {
  Lan lan{2};
  EventChannel producer{lan.transport(0)};
  EventChannel consumer{lan.transport(1)};
  std::vector<double> readings;
  consumer.attach(lan.nodes[0], "sample", [&](const Event& e) {
    EXPECT_EQ(e.source, lan.nodes[0]);
    readings.push_back(e.payload.as_float());
  });
  lan.sim.run_until(duration::millis(200));
  producer.emit("sample", Value{36.6});
  producer.emit("sample", Value{36.7});
  producer.emit("unrelated", Value{1.0});
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(readings, (std::vector<double>{36.6, 36.7}));
}

TEST(Events, DetachStopsPush) {
  Lan lan{2};
  EventChannel producer{lan.transport(0)};
  EventChannel consumer{lan.transport(1)};
  int got = 0;
  const SubscriptionId sub =
      consumer.attach(lan.nodes[0], "", [&](const Event&) { got++; });
  lan.sim.run_until(duration::millis(200));
  producer.emit("x", Value{});
  lan.sim.run_until(duration::millis(400));
  consumer.detach(sub);
  lan.sim.run_until(duration::millis(600));
  producer.emit("x", Value{});
  lan.sim.run_until(duration::seconds(1));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(producer.remote_listener_count(), 0u);
}

struct ManagerSetup : Lan {
  // Node 0: directory. Node 1: supplier. Node 2: consumer. Node 3: spare supplier.
  ManagerSetup() : Lan(4), directory(transport(0)) {
    for (std::size_t i = 1; i < 4; ++i) {
      discos.push_back(std::make_unique<discovery::CentralizedDiscovery>(
          transport(i), std::vector<NodeId>{nodes[0]}));
      managers.push_back(std::make_unique<TransactionManager>(transport(i), *discos.back()));
    }
  }
  discovery::ServiceDiscovery& disco(std::size_t i) { return *discos[i - 1]; }
  TransactionManager& manager(std::size_t i) { return *managers[i - 1]; }

  discovery::DirectoryServer directory;
  std::vector<std::unique_ptr<discovery::CentralizedDiscovery>> discos;
  std::vector<std::unique_ptr<TransactionManager>> managers;
};

qos::SupplierQos temp_service() {
  qos::SupplierQos s;
  s.service_type = "temperature";
  s.reliability = 0.95;
  return s;
}

TransactionSpec continuous_spec(Time period = duration::millis(500)) {
  TransactionSpec spec;
  spec.consumer.service_type = "temperature";
  spec.kind = TransactionKind::kContinuous;
  spec.period = period;
  return spec;
}

TEST(Manager, ContinuousFlowDeliversPeriodically) {
  ManagerSetup setup;
  setup.manager(1).serve("temperature", [] { return to_bytes("21.0"); });
  setup.disco(1).register_service(temp_service(), duration::seconds(300));
  setup.sim.run_until(duration::seconds(1));

  int samples = 0;
  setup.manager(2).begin(continuous_spec(), [&](const Bytes& data, NodeId supplier, Time) {
    EXPECT_EQ(to_string(data), "21.0");
    EXPECT_EQ(supplier, setup.nodes[1]);
    samples++;
  });
  setup.sim.run_until(duration::seconds(6));
  EXPECT_GE(samples, 8);  // ~10 samples in 5s at 500ms
  EXPECT_EQ(setup.manager(2).stats().bound, 1u);
}

TEST(Manager, OnDemandPullsAtConsumerPace) {
  ManagerSetup setup;
  int served = 0;
  setup.manager(1).serve("temperature", [&] {
    served++;
    return to_bytes("t");
  });
  setup.disco(1).register_service(temp_service(), duration::seconds(300));
  setup.sim.run_until(duration::seconds(1));

  TransactionSpec spec = continuous_spec(duration::seconds(1));
  spec.kind = TransactionKind::kOnDemand;
  int samples = 0;
  setup.manager(2).begin(spec, [&](const Bytes&, NodeId, Time) { samples++; });
  setup.sim.run_until(duration::seconds(6));
  EXPECT_GE(samples, 4);
  EXPECT_LE(samples, 6);
  EXPECT_EQ(served, samples);
}

TEST(Manager, IntermittentBursts) {
  ManagerSetup setup;
  setup.manager(1).serve("temperature", [] { return to_bytes("x"); });
  setup.disco(1).register_service(temp_service(), duration::seconds(300));
  setup.sim.run_until(duration::seconds(1));

  TransactionSpec spec = continuous_spec(duration::seconds(2));
  spec.kind = TransactionKind::kIntermittent;
  spec.samples_per_burst = 3;
  int samples = 0;
  setup.manager(2).begin(spec, [&](const Bytes&, NodeId, Time) { samples++; });
  setup.sim.run_until(duration::seconds(6));
  // Bursts at ~1s, 3s, 5s: 3 bursts x 3 samples.
  EXPECT_GE(samples, 6);
  EXPECT_EQ(samples % 3, 0);
}

TEST(Manager, LifetimeEndsTransaction) {
  ManagerSetup setup;
  setup.manager(1).serve("temperature", [] { return to_bytes("x"); });
  setup.disco(1).register_service(temp_service(), duration::seconds(300));
  setup.sim.run_until(duration::seconds(1));

  TransactionSpec spec = continuous_spec();
  spec.lifetime = duration::seconds(3);
  Status end_status{ErrorCode::kInternal, ""};
  setup.manager(2).begin(spec, [](const Bytes&, NodeId, Time) {},
                         [&](Status s) { end_status = s; });
  setup.sim.run_until(duration::seconds(10));
  EXPECT_TRUE(end_status.is_ok());
  EXPECT_EQ(setup.manager(2).active_count(), 0u);
  // Supplier-side flow stops too: no more pushes after the stop arrives.
  const auto pushes = setup.manager(1).stats().pushes_sent;
  setup.sim.run_until(duration::seconds(15));
  EXPECT_EQ(setup.manager(1).stats().pushes_sent, pushes);
}

TEST(Manager, RebindsWhenSupplierDies) {
  ManagerSetup setup;
  setup.manager(1).serve("temperature", [] { return to_bytes("primary"); });
  setup.manager(3).serve("temperature", [] { return to_bytes("backup"); });
  setup.disco(1).register_service(temp_service(), duration::seconds(5));
  setup.disco(3).register_service(temp_service(), duration::seconds(300));
  setup.sim.run_until(duration::seconds(1));

  std::set<std::string> sources;
  const TransactionId tx = setup.manager(2).begin(
      continuous_spec(), [&](const Bytes& data, NodeId, Time) {
        sources.insert(to_string(data));
      });
  setup.sim.run_until(duration::seconds(3));
  // Kill whichever supplier is currently bound.
  const NodeId bound = setup.manager(2).supplier_of(tx);
  ASSERT_TRUE(bound.valid());
  setup.world.kill(bound);
  setup.sim.run_until(duration::seconds(30));
  EXPECT_EQ(sources.size(), 2u);  // both suppliers delivered at some point
  EXPECT_GE(setup.manager(2).stats().rebinds, 1u);
  const NodeId rebound = setup.manager(2).supplier_of(tx);
  EXPECT_TRUE(rebound.valid());
  EXPECT_NE(rebound, bound);
}

TEST(Manager, FlappingSupplierEndsExactlyOnce) {
  // Regression for the double-finish audit: a supplier that goes dark
  // long enough to trip supervision and then comes back mid-rebind used
  // to re-arm the watchdog with its late data while a discovery query was
  // in flight — double-decrementing rebinds_left and racing two query
  // callbacks (double kStart, and in the worst case two finish() paths).
  // With the binding guard, however hard the supplier flaps, the
  // EndCallback fires exactly once and every timer dies with the tx.
  ManagerSetup setup;
  setup.manager(1).serve("temperature", [] { return to_bytes("primary"); });
  setup.manager(3).serve("temperature", [] { return to_bytes("backup"); });
  setup.disco(1).register_service(temp_service(), duration::seconds(300));
  setup.disco(3).register_service(temp_service(), duration::seconds(300));
  setup.sim.run_until(duration::seconds(1));

  net::FaultPlan faults{setup.world};
  // Each cycle pauses the primary just long enough to trip supervision
  // (3 missed 500ms periods), then resumes it so its late pushes land
  // while the consumer's rebind query is in flight.
  for (int cycle = 0; cycle < 3; ++cycle) {
    faults.pause(duration::seconds(1) + duration::seconds(4) * cycle, setup.nodes[1],
                 duration::millis(1800));
  }

  TransactionSpec spec = continuous_spec();
  spec.lifetime = duration::seconds(12);  // expires while flaps are still scheduled
  int ended = 0;
  Status end_status{ErrorCode::kInternal, "never set"};
  int samples = 0;
  setup.manager(2).begin(
      spec, [&](const Bytes&, NodeId, Time) { samples++; },
      [&](Status s) {
        ended++;
        end_status = s;
      });
  setup.sim.run_until(duration::seconds(40));

  EXPECT_EQ(ended, 1);
  EXPECT_TRUE(end_status.is_ok());
  EXPECT_EQ(setup.manager(2).active_count(), 0u);
  EXPECT_GE(setup.manager(2).stats().rebinds, 1u);
  EXPECT_GT(samples, 0);
  EXPECT_EQ(setup.manager(2).stats().ended, 1u);
  EXPECT_GE(faults.stats().pauses, 3u);
}

TEST(Manager, FailsWhenNoSupplierExists) {
  ManagerSetup setup;
  TransactionSpec spec = continuous_spec();
  spec.consumer.service_type = "nonexistent";
  Status end_status;
  setup.manager(2).set_supervision({3, 1, duration::millis(200)});
  setup.manager(2).begin(spec, [](const Bytes&, NodeId, Time) {},
                         [&](Status s) { end_status = s; });
  setup.sim.run_until(duration::seconds(30));
  EXPECT_EQ(end_status.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(setup.manager(2).active_count(), 0u);
}

TEST(Manager, UtilityAccountedThroughBenefitFunction) {
  ManagerSetup setup;
  setup.manager(1).serve("temperature", [] { return to_bytes("x"); });
  setup.disco(1).register_service(temp_service(), duration::seconds(300));
  setup.sim.run_until(duration::seconds(1));

  TransactionSpec spec = continuous_spec();
  // Samples arrive with LAN delay << 1s: full benefit.
  spec.consumer.timeliness = qos::BenefitFunction::step(duration::seconds(1));
  setup.manager(2).begin(spec, [](const Bytes&, NodeId, Time) {});
  setup.sim.run_until(duration::seconds(5));
  const auto& stats = setup.manager(2).stats();
  EXPECT_GT(stats.data_received, 0u);
  EXPECT_DOUBLE_EQ(stats.delivered_utility, static_cast<double>(stats.data_received));
}

TEST(Manager, PredictionPreventsSpuriousRebinds) {
  // §3.6 "intermittent with some prediction": the supplier duty-cycles to
  // a 3 s push period while the consumer asked for 500 ms. Without the
  // supplier-announced prediction, supervision (3 missed periods ~ 1.7 s)
  // would declare the supplier lost; with it, the flow survives untouched.
  ManagerSetup setup;
  setup.manager(1).serve("temperature", [] { return to_bytes("slow"); });
  setup.manager(1).set_push_period("temperature", duration::seconds(3));
  setup.disco(1).register_service(temp_service(), duration::seconds(300));
  setup.sim.run_until(duration::seconds(1));

  TransactionSpec spec = continuous_spec(duration::millis(500));
  int samples = 0;
  setup.manager(2).begin(spec, [&](const Bytes&, NodeId, Time) { samples++; });
  setup.sim.run_until(duration::seconds(20));
  EXPECT_EQ(setup.manager(2).stats().rebinds, 0u);
  EXPECT_GE(samples, 5);  // ~one sample per 3 s
  EXPECT_LE(samples, 8);
}

TEST(Manager, PredictionStillDetectsRealDeath) {
  // Prediction must not mask genuine failure: a duty-cycled supplier that
  // dies is still detected and replaced.
  ManagerSetup setup;
  setup.manager(1).serve("temperature", [] { return to_bytes("slow"); });
  setup.manager(1).set_push_period("temperature", duration::seconds(3));
  setup.manager(3).serve("temperature", [] { return to_bytes("backup"); });
  setup.disco(1).register_service(temp_service(), duration::seconds(8));
  setup.disco(3).register_service(temp_service(), duration::seconds(300));
  setup.sim.run_until(duration::seconds(1));

  TransactionSpec spec = continuous_spec(duration::millis(500));
  std::set<std::string> sources;
  const TransactionId tx = setup.manager(2).begin(
      spec, [&](const Bytes& data, NodeId, Time) { sources.insert(to_string(data)); });
  setup.sim.run_until(duration::seconds(5));
  const NodeId bound = setup.manager(2).supplier_of(tx);
  ASSERT_TRUE(bound.valid());
  setup.world.kill(bound);
  setup.sim.run_until(duration::seconds(60));
  EXPECT_GE(setup.manager(2).stats().rebinds, 1u);
  EXPECT_EQ(sources.size(), 2u);
}

TEST(Bridge, PubSubToTupleSpace) {
  Lan lan{5};
  PubSubBroker broker{lan.transport(0)};
  TupleSpaceServer space{lan.transport(1)};
  PubSubTupleBridge bridge{lan.transport(2), lan.nodes[0], lan.nodes[1], "sensors/*"};
  PubSubClient publisher{lan.transport(3), lan.nodes[0]};
  TupleSpaceClient reader{lan.transport(4), lan.nodes[1]};

  lan.sim.run_until(duration::millis(200));
  publisher.publish("sensors/temp", to_bytes("22.5"));
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(bridge.forwarded_to_space(), 1u);

  bool found = false;
  Tuple got;
  reader.rd(Tuple{Value{"msg"}, Value{"sensors/temp"}, Value::wildcard()},
            [&](bool f, Tuple t) {
              found = f;
              got = std::move(t);
            });
  lan.sim.run_until(duration::seconds(3));
  ASSERT_TRUE(found);
  EXPECT_EQ(to_string(got[2].as_bytes()), "22.5");
}

TEST(Bridge, TupleSpaceToPubSub) {
  Lan lan{5};
  PubSubBroker broker{lan.transport(0)};
  TupleSpaceServer space{lan.transport(1)};
  PubSubTupleBridge bridge{lan.transport(2), lan.nodes[0], lan.nodes[1], "unused/*"};
  TupleSpaceClient writer{lan.transport(3), lan.nodes[1]};
  PubSubClient subscriber{lan.transport(4), lan.nodes[0]};

  std::string got;
  subscriber.subscribe("alerts/fire", [&](const std::string&, const Bytes& d, NodeId) {
    got = to_string(d);
  });
  lan.sim.run_until(duration::millis(200));
  writer.out(Tuple{Value{"publish"}, Value{"alerts/fire"}, Value{to_bytes("evacuate")}});
  lan.sim.run_until(duration::seconds(3));
  EXPECT_EQ(bridge.forwarded_to_pubsub(), 1u);
  EXPECT_EQ(got, "evacuate");
}

}  // namespace
}  // namespace ndsm::transactions
