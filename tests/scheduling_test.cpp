#include <gtest/gtest.h>

#include "scheduling/grid.hpp"
#include "scheduling/tx_scheduler.hpp"
#include "sim/simulator.hpp"

namespace ndsm::scheduling {
namespace {

using qos::BenefitFunction;

TEST(TxScheduler, FifoCompletesInOrder) {
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kFifo, /*bytes_per_tick=*/100,
                    duration::millis(100)};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sched.submit(100, BenefitFunction::constant(), NodeId::invalid(),
                 [&order, i](double, bool) { order.push_back(i); });
  }
  sim.run_until(duration::seconds(1));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sched.stats().completed, 3u);
}

TEST(TxScheduler, BandwidthBoundsThroughput) {
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kFifo, 100, duration::millis(100)};
  // 1000 bytes/s budget; submit 5000 bytes -> 5 seconds to drain.
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    sched.submit(1000, BenefitFunction::constant(), NodeId::invalid(),
                 [&](double, bool) { completed++; });
  }
  sim.run_until(duration::seconds(2) + duration::millis(950));
  EXPECT_EQ(completed, 2);  // 2900 bytes moved in 29 ticks
  sim.run_until(duration::seconds(6));
  EXPECT_EQ(completed, 5);
}

TEST(TxScheduler, PriorityServesUrgentFirst) {
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kPriority, 100, duration::millis(100)};
  std::vector<std::string> order;
  // Relaxed job submitted first, urgent second: priority must invert.
  sched.submit(500, BenefitFunction::linear(duration::minutes(5), duration::minutes(10)),
               NodeId::invalid(), [&](double, bool) { order.push_back("relaxed"); });
  sched.submit(500, BenefitFunction::step(duration::seconds(2)), NodeId::invalid(),
               [&](double, bool) { order.push_back("urgent"); });
  sim.run_until(duration::seconds(5));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "urgent");
}

TEST(TxScheduler, UtilityReflectsCompletionDelay) {
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kFifo, 100, duration::millis(100)};
  double utility = -1;
  // 1000 bytes at 1000 B/s -> completes at ~1s; linear benefit decays
  // from 0 to 2s -> expect utility ~0.5.
  sched.submit(1000, BenefitFunction::linear(0, duration::seconds(2)), NodeId::invalid(),
               [&](double u, bool) { utility = u; });
  sim.run_until(duration::seconds(2));
  EXPECT_NEAR(utility, 0.5, 0.06);
}

TEST(TxScheduler, ExpiredJobsCompleteWithZeroUtility) {
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kFifo, 10, duration::millis(100)};
  double utility = -1;
  sched.submit(1000, BenefitFunction::step(duration::seconds(1)), NodeId::invalid(),
               [&](double u, bool) { utility = u; });
  sim.run_until(duration::seconds(20));
  EXPECT_DOUBLE_EQ(utility, 0.0);
  EXPECT_EQ(sched.stats().expired, 1u);
}

TEST(TxScheduler, DepartureLosesUnfinishedJobs) {
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kFifo, 10, duration::millis(100)};
  const NodeId leaving{7};
  bool lost = false;
  sched.submit(10000, BenefitFunction::constant(), leaving,
               [&](double, bool l) { lost = l; });
  sched.announce_departure(leaving, duration::seconds(2));
  sim.run_until(duration::seconds(5));
  EXPECT_TRUE(lost);
  EXPECT_EQ(sched.stats().lost_to_departure, 1u);
}

TEST(TxScheduler, DepartureAwareBoostsFinishableJobs) {
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kDepartureAware, 100, duration::millis(100)};
  const NodeId leaving{7};
  // A long relaxed job hogs the FIFO head; the departing supplier's job
  // can finish before departure only if boosted past it.
  bool departing_done = false;
  bool departing_lost = false;
  sched.submit(5000, BenefitFunction::constant(), NodeId::invalid(), nullptr);
  sched.submit(1500, BenefitFunction::constant(), leaving, [&](double, bool l) {
    departing_done = !l;
    departing_lost = l;
  });
  sched.announce_departure(leaving, duration::seconds(2));
  sim.run_until(duration::seconds(10));
  EXPECT_TRUE(departing_done);
  EXPECT_FALSE(departing_lost);
}

TEST(TxScheduler, PlainPriorityLosesDepartingJob) {
  // Ablation of the same scenario: kPriority (no departure awareness)
  // keeps serving by deadline and loses the departing supplier's job.
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kPriority, 100, duration::millis(100)};
  const NodeId leaving{7};
  bool departing_lost = false;
  // The competing job has an urgent deadline so plain priority prefers it.
  sched.submit(5000, BenefitFunction::step(duration::seconds(3)), NodeId::invalid(), nullptr);
  sched.submit(1500, BenefitFunction::linear(duration::minutes(1), duration::minutes(2)),
               leaving, [&](double, bool l) { departing_lost = l; });
  sched.announce_departure(leaving, duration::seconds(2));
  sim.run_until(duration::seconds(10));
  EXPECT_TRUE(departing_lost);
}

TEST(TxScheduler, DoesNotWasteBudgetOnLostCauses) {
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kDepartureAware, 100, duration::millis(100)};
  const NodeId leaving{7};
  // 50000 bytes cannot finish before a 2s departure at 1000 B/s: the
  // scheduler must not starve the other job for it.
  bool other_done = false;
  sched.submit(50000, BenefitFunction::constant(), leaving, nullptr);
  sched.submit(1000, BenefitFunction::step(duration::seconds(5)), NodeId::invalid(),
               [&](double u, bool) { other_done = u > 0; });
  sched.announce_departure(leaving, duration::seconds(2));
  sim.run_until(duration::seconds(4));
  EXPECT_TRUE(other_done);
}

TEST(TxScheduler, CancelRemovesJob) {
  sim::Simulator sim;
  TxScheduler sched{sim, SchedulingPolicy::kFifo, 10, duration::millis(100)};
  bool fired = false;
  const JobId id = sched.submit(10000, BenefitFunction::constant(), NodeId::invalid(),
                                [&](double, bool) { fired = true; });
  sched.cancel(id);
  sim.run_until(duration::seconds(5));
  EXPECT_FALSE(fired);
  EXPECT_EQ(sched.queue_depth(), 0u);
}

TEST(Grid, SingleProcessorMakespanIsSum) {
  std::vector<GridTask> tasks{{1, 100}, {2, 200}, {3, 300}};
  const auto result = schedule_grid(tasks, 1, GridPolicy::kFcfs);
  EXPECT_EQ(result.makespan, 600);
  EXPECT_DOUBLE_EQ(result.imbalance, 1.0);
}

TEST(Grid, LptBeatsRoundRobinOnSkewedTasks) {
  // Alternating long/short tasks: round-robin striping stacks every long
  // task on processor 0.
  std::vector<GridTask> tasks;
  for (std::uint64_t i = 0; i < 8; ++i) {
    tasks.push_back({i, i % 2 == 0 ? duration::seconds(9) : duration::seconds(1)});
  }
  const auto lpt = schedule_grid(tasks, 2, GridPolicy::kLpt);
  const auto rr = schedule_grid(tasks, 2, GridPolicy::kRoundRobin);
  EXPECT_EQ(rr.makespan, duration::seconds(36));  // all four 9s on one processor
  EXPECT_EQ(lpt.makespan, duration::seconds(20));  // 9+9+1+1 per processor
}

TEST(Grid, AllTasksAssignedExactlyOnce) {
  std::vector<GridTask> tasks;
  for (std::uint64_t i = 0; i < 37; ++i) tasks.push_back({i, static_cast<Time>(10 + i)});
  for (const auto policy : {GridPolicy::kFcfs, GridPolicy::kLpt, GridPolicy::kRoundRobin}) {
    const auto result = schedule_grid(tasks, 5, policy);
    std::size_t total = 0;
    for (const auto& p : result.per_processor) total += p.size();
    EXPECT_EQ(total, 37u);
  }
}

TEST(Grid, MakespanLowerBoundRespected) {
  // Makespan >= total/m and >= max task, for every policy.
  std::vector<GridTask> tasks{{0, 700}, {1, 300}, {2, 300}, {3, 300}, {4, 400}};
  const Time total = 2000;
  for (const auto policy : {GridPolicy::kFcfs, GridPolicy::kLpt, GridPolicy::kRoundRobin}) {
    const auto result = schedule_grid(tasks, 2, policy);
    EXPECT_GE(result.makespan, total / 2);
    EXPECT_GE(result.makespan, 700);
  }
}

TEST(Grid, LptWithinGrahamBound) {
  // LPT is within 4/3 - 1/(3m) of optimal; optimal >= max(total/m, longest).
  std::vector<GridTask> tasks;
  Rng rng{17};
  Time total = 0;
  Time longest = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const Time d = duration::millis(rng.uniform_int(10, 1000));
    tasks.push_back({i, d});
    total += d;
    longest = std::max(longest, d);
  }
  const std::size_t m = 6;
  const auto result = schedule_grid(tasks, m, GridPolicy::kLpt);
  const double lower = std::max(static_cast<double>(total) / m, static_cast<double>(longest));
  EXPECT_LE(static_cast<double>(result.makespan),
            lower * (4.0 / 3.0 - 1.0 / (3.0 * m)) + 1.0);
}

}  // namespace
}  // namespace ndsm::scheduling
