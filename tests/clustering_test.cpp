#include <gtest/gtest.h>

#include "milan/clustering.hpp"
#include "test_helpers.hpp"

namespace ndsm::milan {
namespace {

using testing::WirelessGrid;

struct ClusterField : WirelessGrid {
  explicit ClusterField(std::size_t n, ClusterConfig cfg = {})
      : WirelessGrid(n, 20.0, 42, /*battery=*/5.0) {
    // Full-field radio so any member can reach any head in one hop
    // (cluster radios transmit at higher power than the relay mesh).
    world.set_medium_range(medium, 1000.0);
    table = std::make_shared<routing::GlobalRoutingTable>(world, routing::Metric::kHopCount);
    with_routers<routing::GlobalRouter>(table);
    world.set_battery(nodes[0], net::Battery::mains());
    std::vector<NodeId> members{nodes.begin() + 1, nodes.end()};
    manager = std::make_unique<ClusterManager>(
        world, nodes[0], members,
        [this](NodeId n) { return node::router_of(runtimes, n); }, cfg);
  }
  std::shared_ptr<routing::GlobalRoutingTable> table;
  std::unique_ptr<ClusterManager> manager;
};

TEST(Clustering, ElectsRequestedHeadCount) {
  ClusterField field{9};
  field.manager->start();
  EXPECT_EQ(field.manager->heads().size(), 3u);
  for (const NodeId head : field.manager->heads()) {
    EXPECT_TRUE(field.manager->is_head(head));
  }
}

TEST(Clustering, HighestEnergyNodesBecomeHeads) {
  ClusterField field{9};
  // Drain most members; the three untouched ones must win the election.
  for (std::size_t i = 1; i < 9; ++i) {
    if (i == 2 || i == 5 || i == 7) continue;
    field.world.drain(field.nodes[i], 4.0);  // down to 20%
  }
  field.manager->start();
  const auto& heads = field.manager->heads();
  ASSERT_EQ(heads.size(), 3u);
  EXPECT_NE(std::find(heads.begin(), heads.end(), field.nodes[2]), heads.end());
  EXPECT_NE(std::find(heads.begin(), heads.end(), field.nodes[5]), heads.end());
  EXPECT_NE(std::find(heads.begin(), heads.end(), field.nodes[7]), heads.end());
}

TEST(Clustering, MembersAssignedToNearestHead) {
  ClusterField field{9};
  field.manager->start();
  for (std::size_t i = 1; i < 9; ++i) {
    const NodeId member = field.nodes[i];
    const NodeId head = field.manager->head_of(member);
    ASSERT_TRUE(head.valid());
    const double assigned = distance(field.world.position(member),
                                     field.world.position(head));
    for (const NodeId other : field.manager->heads()) {
      EXPECT_LE(assigned, distance(field.world.position(member),
                                   field.world.position(other)) + 1e-9);
    }
  }
}

TEST(Clustering, SamplesAggregateToSink) {
  ClusterField field{9};
  std::uint64_t sink_packets = 0;
  field.router(0).set_delivery_handler(routing::Proto::kApp,
                                       [&](NodeId, const Bytes&) { sink_packets++; });
  field.manager->start();
  // Every member samples 5 times over one frame.
  for (int k = 0; k < 5; ++k) {
    field.sim.schedule_at(duration::millis(100 * (k + 1)), [&] {
      for (std::size_t i = 1; i < 9; ++i) field.manager->submit_sample(field.nodes[i]);
    });
  }
  field.sim.run_until(duration::seconds(5));
  EXPECT_EQ(field.manager->stats().samples_in, 40u);
  // Aggregation: at most (heads x frames with data) packets, far fewer
  // than 40 raw samples.
  EXPECT_GT(sink_packets, 0u);
  EXPECT_LE(sink_packets, 9u);
}

TEST(Clustering, HeadRotationSpreadsRole) {
  ClusterConfig cfg;
  cfg.cluster_count = 2;
  cfg.round_length = duration::seconds(5);
  ClusterField field{9, cfg};
  field.manager->start();
  // Heads burn energy forwarding aggregates, so rotation must move the
  // role around. Feed samples continuously and collect head sets.
  std::set<NodeId> ever_heads;
  sim::PeriodicTimer feeder{field.sim, duration::millis(500), [&] {
                              for (std::size_t i = 1; i < 9; ++i) {
                                field.manager->submit_sample(field.nodes[i]);
                              }
                              for (const NodeId h : field.manager->heads()) {
                                ever_heads.insert(h);
                              }
                            }};
  feeder.start();
  field.sim.run_until(duration::minutes(2));
  EXPECT_GT(ever_heads.size(), 2u);  // more nodes than one round's head set
  EXPECT_GE(field.manager->stats().rounds, 20u);
}

TEST(Clustering, DeadHeadReplacedMidRound) {
  ClusterField field{9};
  field.manager->start();
  const NodeId victim = field.manager->heads().front();
  field.world.kill(victim);
  field.sim.run_until(field.sim.now());  // deliver the deferred re-election
  // A member whose head died still gets its sample through (re-election).
  const NodeId member = field.nodes[8] == victim ? field.nodes[7] : field.nodes[8];
  field.manager->submit_sample(member);
  EXPECT_FALSE(field.manager->is_head(victim));
  EXPECT_GE(field.manager->stats().samples_in, 1u);
  for (const NodeId head : field.manager->heads()) {
    EXPECT_TRUE(field.world.alive(head));
  }
}

TEST(Clustering, StopHaltsForwarding) {
  ClusterField field{9};
  field.manager->start();
  field.manager->submit_sample(field.nodes[1]);
  field.manager->stop();
  const auto out_before = field.manager->stats().aggregates_out;
  field.sim.run_until(duration::seconds(10));
  EXPECT_EQ(field.manager->stats().aggregates_out, out_before);
}

}  // namespace
}  // namespace ndsm::milan
