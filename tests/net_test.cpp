#include <gtest/gtest.h>

#include "net/link_spec.hpp"
#include "net/world.hpp"
#include "sim/simulator.hpp"

namespace ndsm::net {
namespace {

struct NetTest : ::testing::Test {
  NetTest() : sim(7), world(sim) {}
  sim::Simulator sim;
  World world;
};

TEST_F(NetTest, UnicastDeliversOnSharedWiredMedium) {
  const MediumId m = world.add_medium(ethernet100());
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({10, 0});
  world.attach(a, m);
  world.attach(b, m);

  Bytes got;
  NodeId from;
  world.set_handler(b, Proto::kApp, [&](const LinkFrame& f) {
    got = f.payload();
    from = f.src;
  });
  ASSERT_TRUE(world.link_send(a, b, Proto::kApp, to_bytes("ping")).is_ok());
  sim.run_all();
  EXPECT_EQ(to_string(got), "ping");
  EXPECT_EQ(from, a);
}

TEST_F(NetTest, NoSharedMediumIsUnreachable) {
  const MediumId m1 = world.add_medium(ethernet100());
  const MediumId m2 = world.add_medium(ethernet100());
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({0, 0});
  world.attach(a, m1);
  world.attach(b, m2);
  EXPECT_EQ(world.link_send(a, b, Proto::kApp, {}).code(), ErrorCode::kUnreachable);
}

TEST_F(NetTest, WirelessRangeLimitsDelivery) {
  const MediumId m = world.add_medium(wifi80211(/*range_m=*/50, /*loss=*/0));
  const NodeId a = world.add_node({0, 0});
  const NodeId near = world.add_node({40, 0});
  const NodeId far = world.add_node({60, 0});
  for (const NodeId n : {a, near, far}) world.attach(n, m);

  EXPECT_TRUE(world.in_link_range(a, near));
  EXPECT_FALSE(world.in_link_range(a, far));
  EXPECT_TRUE(world.link_send(a, near, Proto::kApp, {}).is_ok());
  EXPECT_EQ(world.link_send(a, far, Proto::kApp, {}).code(), ErrorCode::kUnreachable);
}

TEST_F(NetTest, LatencyMatchesBandwidthAndPropagation) {
  LinkSpec spec = ethernet100();  // 100 Mbps, 50us prop, 18B header
  const MediumId m = world.add_medium(spec);
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({0, 0});
  world.attach(a, m);
  world.attach(b, m);

  Time arrival = -1;
  world.set_handler(b, Proto::kApp, [&](const LinkFrame&) { arrival = sim.now(); });
  const std::size_t payload = 982;  // 982+18 = 1000 bytes = 8000 bits
  ASSERT_TRUE(world.link_send(a, b, Proto::kApp, Bytes(payload, 0)).is_ok());
  sim.run_all();
  // 8000 bits / 100 Mbps = 80us; + 50us propagation = 130us.
  EXPECT_EQ(arrival, 130);
}

TEST_F(NetTest, BroadcastReachesAllInRange) {
  const MediumId m = world.add_medium(wifi80211(50, 0));
  const NodeId src = world.add_node({0, 0});
  world.attach(src, m);
  int received = 0;
  for (int i = 0; i < 5; ++i) {
    const NodeId n = world.add_node({static_cast<double>(10 * (i + 1)), 0});
    world.attach(n, m);
    world.set_handler(n, Proto::kApp, [&](const LinkFrame& f) {
      EXPECT_EQ(f.dst, kBroadcast);
      received++;
    });
  }
  // Nodes at 10,20,30,40 are in range; node at 50 exactly on the boundary.
  ASSERT_TRUE(world.link_broadcast(src, Proto::kApp, to_bytes("hello")).is_ok());
  sim.run_all();
  EXPECT_EQ(received, 5);  // range is inclusive
}

TEST_F(NetTest, LossDropsSilently) {
  const MediumId m = world.add_medium(wifi80211(100, /*loss=*/1.0));
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({10, 0});
  world.attach(a, m);
  world.attach(b, m);
  int received = 0;
  world.set_handler(b, Proto::kApp, [&](const LinkFrame&) { received++; });
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(world.link_send(a, b, Proto::kApp, {}).is_ok());  // loss is silent
  }
  sim.run_all();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(world.stats().frames_lost, 20u);
}

TEST_F(NetTest, TxEnergyChargedOnWireless) {
  const MediumId m = world.add_medium(wifi80211(100, 0));
  const NodeId a = world.add_node({0, 0}, Battery{1.0});
  const NodeId b = world.add_node({50, 0}, Battery{1.0});
  world.attach(a, m);
  world.attach(b, m);
  const double before = world.battery(a).remaining();
  ASSERT_TRUE(world.link_send(a, b, Proto::kApp, Bytes(66, 0)).is_ok());
  sim.run_all();
  // (66+34 hdr)*8 = 800 bits at d=50.
  const double expected = world.energy_model().tx_cost(800, 50.0);
  EXPECT_NEAR(before - world.battery(a).remaining(), expected, 1e-12);
  // Receiver pays rx cost.
  EXPECT_NEAR(1.0 - world.battery(b).remaining(), world.energy_model().rx_cost(800), 1e-12);
}

TEST_F(NetTest, WiredSendsAreFree) {
  const MediumId m = world.add_medium(ethernet100());
  const NodeId a = world.add_node({0, 0}, Battery{1.0});
  const NodeId b = world.add_node({10, 0});
  world.attach(a, m);
  world.attach(b, m);
  ASSERT_TRUE(world.link_send(a, b, Proto::kApp, Bytes(100, 0)).is_ok());
  sim.run_all();
  EXPECT_DOUBLE_EQ(world.battery(a).remaining(), 1.0);
}

TEST_F(NetTest, BatteryExhaustionKillsNode) {
  const MediumId m = world.add_medium(wifi80211(100, 0));
  const NodeId a = world.add_node({0, 0}, Battery{1e-6});  // tiny battery
  const NodeId b = world.add_node({90, 0});
  world.attach(a, m);
  world.attach(b, m);
  NodeId died = NodeId::invalid();
  world.set_death_handler([&](NodeId n) { died = n; });
  // Repeated sends at long distance exhaust 1uJ quickly.
  Status last = Status::ok();
  for (int i = 0; i < 100 && world.alive(a); ++i) {
    last = world.link_send(a, b, Proto::kApp, Bytes(100, 0));
  }
  EXPECT_FALSE(world.alive(a));
  EXPECT_EQ(died, a);
  EXPECT_EQ(last.code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(world.link_send(a, b, Proto::kApp, {}).code(), ErrorCode::kResourceExhausted);
}

TEST_F(NetTest, DrainKillsAtZero) {
  const NodeId a = world.add_node({0, 0}, Battery{1.0});
  world.drain(a, 0.5);
  EXPECT_TRUE(world.alive(a));
  EXPECT_DOUBLE_EQ(world.battery(a).remaining(), 0.5);
  world.drain(a, 0.6);
  EXPECT_FALSE(world.alive(a));
}

TEST_F(NetTest, DeadNodesDoNotReceive) {
  const MediumId m = world.add_medium(ethernet100());
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({0, 0});
  world.attach(a, m);
  world.attach(b, m);
  int received = 0;
  world.set_handler(b, Proto::kApp, [&](const LinkFrame&) { received++; });
  ASSERT_TRUE(world.link_send(a, b, Proto::kApp, {}).is_ok());
  world.kill(b);  // dies while the frame is in flight
  sim.run_all();
  EXPECT_EQ(received, 0);
}

TEST_F(NetTest, NeighborsReflectRangeAndLiveness) {
  const MediumId m = world.add_medium(wifi80211(25, 0));
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({20, 0});
  const NodeId c = world.add_node({40, 0});
  for (const NodeId n : {a, b, c}) world.attach(n, m);
  EXPECT_EQ(world.neighbors(a), (std::vector<NodeId>{b}));
  EXPECT_EQ(world.neighbors(b), (std::vector<NodeId>{a, c}));
  world.kill(b);
  EXPECT_TRUE(world.neighbors(a).empty());
}

TEST_F(NetTest, LoopbackDelivery) {
  const NodeId a = world.add_node({0, 0});
  Bytes got;
  world.set_handler(a, Proto::kApp, [&](const LinkFrame& f) { got = f.payload(); });
  ASSERT_TRUE(world.link_send(a, a, Proto::kApp, to_bytes("self")).is_ok());
  sim.run_all();
  EXPECT_EQ(to_string(got), "self");
}

TEST_F(NetTest, MobilityMovesNodeOverTime) {
  const NodeId a = world.add_node({0, 0});
  world.move_linear(a, Vec2{100, 0}, /*speed=*/10.0);  // 10 m/s -> 10s to arrive
  sim.run_until(duration::seconds(5));
  EXPECT_NEAR(world.position(a).x, 50.0, 1.5);
  sim.run_until(duration::seconds(11));
  EXPECT_DOUBLE_EQ(world.position(a).x, 100.0);
  EXPECT_EQ(sim.pending(), 0u);  // motion stopped on arrival
}

TEST_F(NetTest, MobilityChangesConnectivity) {
  const MediumId m = world.add_medium(wifi80211(30, 0));
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({20, 0});
  world.attach(a, m);
  world.attach(b, m);
  EXPECT_TRUE(world.in_link_range(a, b));
  world.move_linear(b, Vec2{100, 0}, 10.0);
  sim.run_until(duration::seconds(9));
  EXPECT_FALSE(world.in_link_range(a, b));
}

TEST_F(NetTest, PreferWiredOverWireless) {
  const MediumId wired = world.add_medium(ethernet100());
  const MediumId wifi = world.add_medium(wifi80211(100, 0));
  const NodeId a = world.add_node({0, 0}, Battery{1.0});
  const NodeId b = world.add_node({10, 0});
  world.attach(a, wifi);
  world.attach(b, wifi);
  world.attach(a, wired);
  world.attach(b, wired);
  ASSERT_TRUE(world.link_send(a, b, Proto::kApp, Bytes(100, 0)).is_ok());
  sim.run_all();
  // Energy untouched because the wired segment was chosen.
  EXPECT_DOUBLE_EQ(world.battery(a).remaining(), 1.0);
}

TEST_F(NetTest, StatsAccumulateAndReset) {
  const MediumId m = world.add_medium(ethernet100());
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({0, 0});
  world.attach(a, m);
  world.attach(b, m);
  world.set_handler(b, Proto::kApp, [](const LinkFrame&) {});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(world.link_send(a, b, Proto::kApp, Bytes(10, 0)).is_ok());
  }
  sim.run_all();
  EXPECT_EQ(world.stats(a).frames_sent, 3u);
  EXPECT_EQ(world.stats(a).bytes_sent, 30u);
  EXPECT_EQ(world.stats(b).frames_received, 3u);
  EXPECT_EQ(world.stats().frames_delivered, 3u);
  world.reset_stats();
  EXPECT_EQ(world.stats(a).frames_sent, 0u);
  EXPECT_EQ(world.stats().frames_sent, 0u);
}

TEST_F(NetTest, ReviveRestoresDelivery) {
  const MediumId m = world.add_medium(ethernet100());
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({0, 0});
  world.attach(a, m);
  world.attach(b, m);
  int received = 0;
  world.set_handler(b, Proto::kApp, [&](const LinkFrame&) { received++; });
  world.kill(b);
  ASSERT_TRUE(world.link_send(a, b, Proto::kApp, {}).is_ok());
  sim.run_all();
  EXPECT_EQ(received, 0);
  world.revive(b);
  ASSERT_TRUE(world.link_send(a, b, Proto::kApp, {}).is_ok());
  sim.run_all();
  EXPECT_EQ(received, 1);
}

// Brute-force reachability reference: the grid index must agree with an
// all-pairs scan, including after mobility re-buckets nodes.
TEST(SpatialIndex, NeighborsMatchBruteForceUnderMobility) {
  sim::Simulator sim{11};
  World world{sim};
  const MediumId m = world.add_medium(wifi80211(/*range_m=*/35, /*loss=*/0));
  Rng rng{77};
  std::vector<NodeId> nodes;
  for (int i = 0; i < 60; ++i) {
    const NodeId id = world.add_node({rng.uniform(-120, 120), rng.uniform(-120, 120)});
    world.attach(id, m);
    nodes.push_back(id);
  }
  auto brute_neighbors = [&](NodeId a) {
    std::vector<NodeId> out;
    for (const NodeId b : nodes) {
      if (b == a || !world.alive(b)) continue;
      if (distance(world.position(a), world.position(b)) <= 35.0) out.push_back(b);
    }
    return out;  // already sorted: nodes is in id order
  };
  for (int round = 0; round < 5; ++round) {
    for (const NodeId id : nodes) {
      EXPECT_EQ(world.neighbors(id), brute_neighbors(id)) << "round " << round;
    }
    // Teleport a third of the nodes (exercises cell re-bucketing), walk
    // another third across cell boundaries.
    for (std::size_t i = 0; i < nodes.size(); i += 3) {
      world.set_position(nodes[i], {rng.uniform(-120, 120), rng.uniform(-120, 120)});
    }
    for (std::size_t i = 1; i < nodes.size(); i += 3) {
      world.move_linear(nodes[i], {rng.uniform(-120, 120), rng.uniform(-120, 120)}, 40.0);
    }
    sim.run_until(sim.now() + duration::seconds(1));
  }
  EXPECT_GT(world.stats().grid_cells_scanned, 0u);
}

TEST(SpatialIndex, RangeChangeRebuildsGrid) {
  sim::Simulator sim{3};
  World world{sim};
  const MediumId m = world.add_medium(wifi80211(/*range_m=*/25, /*loss=*/0));
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({60, 0});
  world.attach(a, m);
  world.attach(b, m);
  EXPECT_TRUE(world.neighbors(a).empty());
  world.set_medium_range(m, 80);
  EXPECT_EQ(world.neighbors(a), (std::vector<NodeId>{b}));
  world.set_medium_range(m, 10);
  EXPECT_TRUE(world.neighbors(a).empty());
  // Mobility after a rebuild still tracks cells correctly.
  world.set_position(b, {5, 0});
  EXPECT_EQ(world.neighbors(a), (std::vector<NodeId>{b}));
}

TEST(SpatialIndex, BroadcastSharesOnePayloadBuffer) {
  sim::Simulator sim{5};
  World world{sim};
  const MediumId m = world.add_medium(wifi80211(100, 0));
  const NodeId src = world.add_node({0, 0});
  world.attach(src, m);
  std::vector<const Bytes*> seen;
  std::shared_ptr<const Bytes> retained;
  for (int i = 0; i < 4; ++i) {
    const NodeId n = world.add_node({static_cast<double>(10 * (i + 1)), 0});
    world.attach(n, m);
    world.set_handler(n, Proto::kApp, [&](const LinkFrame& f) {
      seen.push_back(&f.payload());
      retained = f.payload_buf;  // handlers may retain past the callback
    });
  }
  ASSERT_TRUE(world.link_broadcast(src, Proto::kApp, to_bytes("shared")).is_ok());
  sim.run_all();
  ASSERT_EQ(seen.size(), 4u);
  for (const Bytes* p : seen) EXPECT_EQ(p, seen[0]);  // one buffer, zero copies
  EXPECT_EQ(world.stats().payload_copies_avoided, 3u);
  EXPECT_EQ(to_string(*retained), "shared");
}

TEST(SpatialIndex, AuditVerifyGridThroughMobilityChurn) {
  // Teleports, cell-boundary walks and range rebuilds, each followed by a
  // full grid audit: every member bucketed under its current cell key,
  // cached keys in sync, no empty buckets retained (the verifier aborts
  // on any violation).
  sim::Simulator sim{11};
  World world{sim};
  Rng rng{17};
  const MediumId m = world.add_medium(wifi80211(/*range_m=*/30, /*loss=*/0));
  std::vector<NodeId> nodes;
  for (int i = 0; i < 40; ++i) {
    nodes.push_back(world.add_node({rng.uniform(-100, 100), rng.uniform(-100, 100)}));
    world.attach(nodes.back(), m);
  }
  world.audit_verify_grid(m);
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < nodes.size(); i += 2) {
      world.set_position(nodes[i], {rng.uniform(-100, 100), rng.uniform(-100, 100)});
    }
    world.audit_verify_grid(m);
  }
  world.set_medium_range(m, 55);
  world.audit_verify_grid(m);
  world.set_medium_range(m, 12);
  world.audit_verify_grid(m);
}

// §3.6/ROADMAP determinism guarantee, at scale and under mobility: two
// same-seed runs of a 200-node mobile broadcast scenario must execute the
// identical event sequence, deliver in the identical order and agree on
// every WorldStats counter.
TEST(Determinism, TwinMobileBroadcastRuns) {
  struct Trace {
    std::uint64_t executed = 0;
    std::vector<std::tuple<std::uint64_t, std::uint64_t, Time>> deliveries;
    WorldStats stats;
    bool operator==(const Trace& o) const {
      return executed == o.executed && deliveries == o.deliveries &&
             stats.frames_sent == o.stats.frames_sent &&
             stats.frames_delivered == o.stats.frames_delivered &&
             stats.frames_lost == o.stats.frames_lost &&
             stats.bytes_on_wire == o.stats.bytes_on_wire &&
             stats.grid_cells_scanned == o.stats.grid_cells_scanned &&
             stats.grid_candidates == o.stats.grid_candidates &&
             stats.payload_copies_avoided == o.stats.payload_copies_avoided;
    }
  };
  auto run = [] {
    sim::Simulator sim{20240806};
    World world{sim};
    const MediumId m = world.add_medium(wifi80211(/*range_m=*/50, /*loss=*/0.1));
    Trace t;
    std::vector<NodeId> nodes;
    for (int i = 0; i < 200; ++i) {
      const NodeId id = world.add_node(
          {sim.rng().uniform(0, 400), sim.rng().uniform(0, 400)}, Battery{5.0});
      world.attach(id, m);
      world.set_handler(id, Proto::kApp, [&t, id, &sim](const LinkFrame& f) {
        t.deliveries.emplace_back(id.value(), f.src.value(), sim.now());
      });
      world.move_linear(id, {sim.rng().uniform(0, 400), sim.rng().uniform(0, 400)},
                        sim.rng().uniform(1.0, 15.0));
      nodes.push_back(id);
    }
    // Every node broadcasts once, at an rng-staggered phase.
    for (const NodeId id : nodes) {
      const Time phase = duration::millis(sim.rng().uniform_int(0, 500));
      sim.schedule_at(phase, [&world, id] {
        world.link_broadcast(id, Proto::kApp, to_bytes("beacon"));
      });
    }
    sim.run_until(duration::seconds(3));
    t.executed = sim.executed_events();
    t.stats = world.stats();
    return t;
  };
  const Trace a = run();
  const Trace b = run();
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.deliveries.size(), 100u);       // scenario actually exercised fan-out
  EXPECT_GT(a.stats.frames_lost, 0u);         // loss draws happened, same in both
  EXPECT_GT(a.stats.payload_copies_avoided, 0u);
}

TEST(LossModel, BitErrorRateScalesWithFrameLength) {
  LinkSpec spec;
  spec.bit_error_rate = 1e-4;
  const double short_frame = World::frame_loss_probability(spec, 32);
  const double long_frame = World::frame_loss_probability(spec, 1500);
  EXPECT_GT(long_frame, short_frame);
  EXPECT_NEAR(short_frame, 1.0 - std::pow(1.0 - 1e-4, 32 * 8), 1e-12);
  EXPECT_GT(long_frame, 0.69);  // 12000 bits at 1e-4 -> ~70% loss
}

TEST(LossModel, FlatAndBerCombine) {
  LinkSpec spec;
  spec.loss_probability = 0.5;
  spec.bit_error_rate = 0.0;
  EXPECT_DOUBLE_EQ(World::frame_loss_probability(spec, 100), 0.5);
  spec.bit_error_rate = 1e-3;
  const double combined = World::frame_loss_probability(spec, 100);
  EXPECT_GT(combined, 0.5);
  EXPECT_LT(combined, 1.0);
}

TEST(EnergyModel, CostFormulas) {
  const EnergyModel model;
  EXPECT_DOUBLE_EQ(model.rx_cost(1000), 1000 * 50e-9);
  EXPECT_DOUBLE_EQ(model.tx_cost(1000, 0), 1000 * 50e-9);
  EXPECT_DOUBLE_EQ(model.tx_cost(1000, 100),
                   1000 * (50e-9 + 100e-12 * 100 * 100));
  // Transmission cost grows quadratically in distance.
  EXPECT_GT(model.tx_cost(1000, 200) - model.tx_cost(1000, 100),
            model.tx_cost(1000, 100) - model.tx_cost(1000, 0));
}

TEST(BatteryModel, FractionAndDepletion) {
  Battery b{10.0};
  EXPECT_TRUE(b.finite());
  EXPECT_DOUBLE_EQ(b.fraction(), 1.0);
  EXPECT_TRUE(b.consume(4.0));
  EXPECT_DOUBLE_EQ(b.fraction(), 0.6);
  EXPECT_FALSE(b.consume(7.0));
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining(), 0.0);

  Battery mains = Battery::mains();
  EXPECT_FALSE(mains.finite());
  EXPECT_TRUE(mains.consume(1e9));
  EXPECT_DOUBLE_EQ(mains.fraction(), 1.0);
}

}  // namespace
}  // namespace ndsm::net
