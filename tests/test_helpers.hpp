#pragma once
// Shared fixtures: small simulated networks used across test suites.
// Both fixtures host one node::Runtime per node — tests reach subsystems
// through runtime(i)/router(i)/transport(i) and can crash()/restart()
// any node mid-test.

#include <memory>
#include <vector>

#include "net/link_spec.hpp"
#include "net/world.hpp"
#include "node/runtime.hpp"
#include "routing/global.hpp"
#include "sim/simulator.hpp"
#include "transport/reliable.hpp"

namespace ndsm::testing {

// A wired LAN: `n` mains-powered nodes on one ethernet segment, each
// running a full stack (GlobalRouter + ReliableTransport) in a Runtime.
struct Lan {
  explicit Lan(std::size_t n, std::uint64_t seed = 42,
               net::LinkSpec spec = net::ethernet100())
      : sim(seed), world(sim) {
    medium = world.add_medium(std::move(spec));
    table = std::make_shared<routing::GlobalRoutingTable>(world, routing::Metric::kHopCount);
    node::StackConfig cfg;
    cfg.router = node::RouterPolicy::kGlobal;
    cfg.table = table;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId id = world.add_node(Vec2{static_cast<double>(i) * 10.0, 0.0});
      world.attach(id, medium);
      nodes.push_back(id);
      runtimes.push_back(std::make_unique<node::Runtime>(world, id, cfg));
    }
  }

  node::Runtime& runtime(std::size_t i) { return *runtimes[i]; }
  transport::ReliableTransport& transport(std::size_t i) { return runtimes[i]->transport(); }
  routing::Router& router(std::size_t i) { return runtimes[i]->router(); }

  sim::Simulator sim;
  net::World world;
  MediumId medium;
  std::shared_ptr<routing::GlobalRoutingTable> table;
  std::vector<NodeId> nodes;
  std::vector<std::unique_ptr<node::Runtime>> runtimes;
};

// A wireless multi-hop grid: nodes on a sqrt(n) x sqrt(n) lattice with
// `spacing` metres between neighbours and radio range just over one hop.
struct WirelessGrid {
  explicit WirelessGrid(std::size_t n, double spacing = 20.0, std::uint64_t seed = 42,
                        double battery_j = 1e9, double loss = 0.0)
      : sim(seed), world(sim) {
    const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
    // Range excludes lattice diagonals (spacing*sqrt(2) ≈ 1.41*spacing), so
    // the grid is 4-connected and hop counts are Manhattan distances.
    net::LinkSpec spec = net::wifi80211(spacing * 1.25, loss);
    medium = world.add_medium(std::move(spec));
    for (std::size_t i = 0; i < n; ++i) {
      const Vec2 pos{static_cast<double>(i % side) * spacing,
                     static_cast<double>(i / side) * spacing};
      const NodeId id = world.add_node(pos, net::Battery{battery_j});
      world.attach(id, medium);
      nodes.push_back(id);
    }
  }

  // Bring stacks up after construction so tests can pick the router type.
  template <class RouterT, class... Args>
  void with_routers(Args... args) {
    node::StackConfig cfg;
    cfg.router = node::RouterPolicy::kCustom;
    cfg.router_factory = [args...](net::Stack& stack) {
      return std::make_unique<RouterT>(stack, args...);
    };
    for (const NodeId id : nodes) {
      runtimes.push_back(std::make_unique<node::Runtime>(world, id, cfg));
    }
  }

  node::Runtime& runtime(std::size_t i) { return *runtimes[i]; }
  transport::ReliableTransport& transport(std::size_t i) { return runtimes[i]->transport(); }
  routing::Router& router(std::size_t i) { return runtimes[i]->router(); }

  sim::Simulator sim;
  net::World world;
  MediumId medium;
  std::vector<NodeId> nodes;
  std::vector<std::unique_ptr<node::Runtime>> runtimes;
};

}  // namespace ndsm::testing
