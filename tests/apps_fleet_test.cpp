// Multi-process loopback fleet tests for the flagship apps — the
// acceptance criterion that the same apps:: code running in the sim soaks
// completes a real multi-OS-process session over UDP:
//
//   ReplfsFleet   three replfs server processes (each with a crash-durable
//                 WAL file) and one client process. The parent SIGKILLs a
//                 server mid-write-stream and respawns it on the same WAL
//                 file; the client's re-driven 2PC walks it back in, and
//                 at the end the client reads every acked key back from
//                 every replica — including the restarted one, which must
//                 serve pre-crash writes out of its recovered log.
//   MazewarFleet  three player processes gossip state over the multicast
//                 group until each has a live view of both others and the
//                 score equation holds.
//
// Process model matches udp_fleet_test.cpp: this binary re-execs itself
// with NDSM_APPS_ROLE set; bounded waits everywhere plus a ctest TIMEOUT.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "apps/mazewar/mazewar.hpp"
#include "apps/replfs/replfs.hpp"
#include "net/udp_stack.hpp"
#include "node/runtime.hpp"

namespace {

using namespace ndsm;

constexpr std::uint32_t kReplfsServers = 3;
constexpr int kReplfsWrites = 30;
constexpr std::uint32_t kMazewarPlayers = 3;

volatile std::sig_atomic_t g_terminated = 0;
void on_sigterm(int) { g_terminated = 1; }

std::vector<NodeId> fleet_ids(std::uint32_t n) {
  std::vector<NodeId> ids;
  for (std::uint32_t i = 1; i <= n; ++i) ids.emplace_back(i);
  return ids;
}

net::UdpStackConfig udp_config(std::uint16_t base, std::uint32_t members) {
  net::UdpStackConfig cfg;
  cfg.port_base = base;
  cfg.peers = fleet_ids(members);
  return cfg;
}

std::string wal_path(std::uint32_t id) {
  // Relative to the test's working directory; pid-salted by the parent's
  // pid carried through the port base, so parallel runs do not collide.
  return "apps-fleet-" + std::string(std::getenv("NDSM_APPS_BASE")) + "-server-" +
         std::to_string(id) + ".wal";
}

std::string client_value(int i) {
  std::string v = "payload-" + std::to_string(i) + "-";
  v.append(static_cast<std::size_t>(64 + (i % 4) * 700), static_cast<char>('a' + i % 26));
  return v;
}

// --- roles -----------------------------------------------------------------

int run_replfs_server(std::uint16_t base, std::uint32_t id) {
  std::signal(SIGTERM, on_sigterm);
  net::UdpStack stack{NodeId{id}, udp_config(base, kReplfsServers + 1)};
  node::StackConfig scfg;
  scfg.router = node::RouterPolicy::kFlooding;
  node::Runtime rt{stack, scfg};
  apps::replfs::ReplfsConfig rcfg;
  rcfg.wal_file = wal_path(id);
  rt.add_service<apps::replfs::Server>("replfs", [rcfg](node::Runtime& r) {
    return std::make_unique<apps::replfs::Server>(r.transport(), r.net_stack(),
                                                  r.storage("replfs-wal"), rcfg);
  });
  stack.run_until([] { return g_terminated != 0; }, duration::seconds(120));
  return 0;
}

int run_replfs_client(std::uint16_t base) {
  net::UdpStack stack{NodeId{kReplfsServers + 1}, udp_config(base, kReplfsServers + 1)};
  node::StackConfig scfg;
  scfg.router = node::RouterPolicy::kFlooding;
  node::Runtime rt{stack, scfg};
  apps::replfs::ReplfsConfig ccfg;
  ccfg.retry_period = duration::millis(250);
  ccfg.max_write_attempts = 120;  // ride out the scripted server kill
  apps::replfs::Client client{rt.transport(), stack, fleet_ids(kReplfsServers), ccfg};

  // Paced write stream (one every ~50 ms) so the parent's mid-stream
  // SIGKILL lands between commits, not after the workload finished.
  int resolved = 0, failed = 0, issued = 0;
  std::function<void()> next = [&] {
    if (issued >= kReplfsWrites) return;
    const int i = issued++;
    client.write("f-" + std::to_string(i), to_bytes(client_value(i)), [&, i](Status s) {
      resolved++;
      failed += s.is_ok() ? 0 : 1;
      (void)i;
      stack.schedule_after(duration::millis(50), next);
    });
  };
  next();
  if (!stack.run_until([&] { return resolved == kReplfsWrites; },
                       duration::seconds(90))) {
    return 2;  // writes stuck
  }
  if (failed != 0) return 3;

  // Verification: every acked key, on every replica, with the right bytes.
  int expected = 0, verified = 0, answered = 0;
  for (int i = 0; i < kReplfsWrites; ++i) {
    for (std::uint32_t s = 1; s <= kReplfsServers; ++s) {
      expected++;
      client.read(NodeId{s}, "f-" + std::to_string(i), [&, i](bool found, const Bytes& v) {
        answered++;
        verified += (found && to_string(v) == client_value(i)) ? 1 : 0;
      });
    }
  }
  if (!stack.run_until([&] { return answered == expected; }, duration::seconds(30))) {
    return 4;  // reads stuck
  }
  return verified == expected ? 0 : 5;
}

int run_mazewar_player(std::uint16_t base, std::uint32_t id) {
  net::UdpStack stack{NodeId{id}, udp_config(base, kMazewarPlayers)};
  apps::mazewar::MazeConfig cfg;
  cfg.state_period = duration::millis(50);
  apps::mazewar::Player player{stack, cfg};
  const bool converged = stack.run_until(
      [&] {
        return player.peers().size() == kMazewarPlayers - 1 &&
               player.stats().states_received >= 30;
      },
      duration::seconds(25));
  if (!converged) return 2;
  stack.run_for(duration::seconds(1));  // play a little: claims may fly
  const auto& st = player.stats();
  if (player.self_state().score !=
      apps::mazewar::kHitReward * static_cast<std::int64_t>(st.hits_confirmed) -
          apps::mazewar::kHitPenalty * static_cast<std::int64_t>(st.hits_suffered)) {
    return 3;
  }
  if (st.malformed_dropped != 0) return 4;
  player.leave();
  stack.run_for(duration::millis(200));
  return 0;
}

int run_role(const std::string& role) {
  const auto base =
      static_cast<std::uint16_t>(std::atoi(std::getenv("NDSM_APPS_BASE")));
  const char* id_env = std::getenv("NDSM_APPS_ID");
  const auto id = static_cast<std::uint32_t>(id_env ? std::atoi(id_env) : 0);
  if (role == "replfs-server") return run_replfs_server(base, id);
  if (role == "replfs-client") return run_replfs_client(base);
  if (role == "mazewar-player") return run_mazewar_player(base, id);
  return 64;
}

// --- parent-side process plumbing (as in udp_fleet_test.cpp) ---------------

pid_t spawn_role(const char* exe, const char* role, std::uint16_t base, std::uint32_t id) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  setenv("NDSM_APPS_ROLE", role, 1);
  setenv("NDSM_APPS_BASE", std::to_string(base).c_str(), 1);
  setenv("NDSM_APPS_ID", std::to_string(id).c_str(), 1);
  char* const argv[] = {const_cast<char*>(exe), nullptr};
  execv(exe, argv);
  _exit(63);
}

bool wait_exit(pid_t pid, int* exit_code, int max_quanta) {
  for (int i = 0; i < max_quanta; ++i) {
    int wstatus = 0;
    const pid_t r = waitpid(pid, &wstatus, WNOHANG);
    if (r == pid) {
      *exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128 + WTERMSIG(wstatus);
      return true;
    }
    timespec ts{0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  return false;
}

void sleep_quanta(int quanta) {
  for (int i = 0; i < quanta; ++i) {
    timespec ts{0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
}

TEST(AppsFleetTest, ReplfsFleetSurvivesServerCrashRestartMidSession) {
  const auto base = static_cast<std::uint16_t>(27000 + (getpid() % 1200) * 24);
  setenv("NDSM_APPS_BASE", std::to_string(base).c_str(), 1);  // for wal_path()
  for (std::uint32_t s = 1; s <= kReplfsServers; ++s) {
    std::remove(wal_path(s).c_str());  // fresh logs for this run
  }

  std::vector<pid_t> servers;
  for (std::uint32_t s = 1; s <= kReplfsServers; ++s) {
    servers.push_back(spawn_role("/proc/self/exe", "replfs-server", base, s));
    ASSERT_GT(servers.back(), 0);
  }
  const pid_t client = spawn_role("/proc/self/exe", "replfs-client", base, 0);
  ASSERT_GT(client, 0);

  // Mid-stream fail-stop: SIGKILL (no goodbye, no flush beyond the WAL's
  // own appends) then respawn on the same WAL file.
  sleep_quanta(20);  // ~1 s: the paced stream is a third of the way in
  kill(servers[1], SIGKILL);
  int dead_exit = -1;
  ASSERT_TRUE(wait_exit(servers[1], &dead_exit, 100));
  sleep_quanta(10);  // ~0.5 s of three-replica unavailability
  servers[1] = spawn_role("/proc/self/exe", "replfs-server", base, 2);
  ASSERT_GT(servers[1], 0);

  int client_exit = -1;
  const bool client_done = wait_exit(client, &client_exit, 2400);  // ~120 s

  for (const pid_t pid : servers) kill(pid, SIGTERM);
  int server_exit = -1;
  bool servers_done = true;
  for (const pid_t pid : servers) {
    servers_done = wait_exit(pid, &server_exit, 200) && servers_done;
  }
  for (const pid_t pid : servers) {  // belt and braces
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, WNOHANG);
  }
  for (std::uint32_t s = 1; s <= kReplfsServers; ++s) {
    std::remove(wal_path(s).c_str());
  }

  ASSERT_TRUE(client_done) << "replfs client did not exit";
  EXPECT_EQ(client_exit, 0)
      << "client failed (2=writes stuck, 3=write failed, 4=reads stuck, "
         "5=an acked write was missing or wrong on a replica)";
  EXPECT_TRUE(servers_done) << "a server ignored SIGTERM";
}

TEST(AppsFleetTest, MazewarThreeProcessSessionConverges) {
  const auto base = static_cast<std::uint16_t>(56000 + (getpid() % 300) * 24);
  std::vector<pid_t> players;
  for (std::uint32_t id = 1; id <= kMazewarPlayers; ++id) {
    players.push_back(spawn_role("/proc/self/exe", "mazewar-player", base, id));
    ASSERT_GT(players.back(), 0);
  }
  bool all_done = true;
  for (std::size_t i = 0; i < players.size(); ++i) {
    int code = -1;
    const bool done = wait_exit(players[i], &code, 800);  // ~40 s
    all_done = all_done && done;
    EXPECT_TRUE(done) << "player " << (i + 1) << " did not exit";
    if (done) {
      EXPECT_EQ(code, 0) << "player " << (i + 1)
                         << " failed (2=no convergence, 3=score equation, "
                            "4=malformed frames)";
    }
  }
  for (const pid_t pid : players) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, WNOHANG);
  }
  ASSERT_TRUE(all_done);
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* role = std::getenv("NDSM_APPS_ROLE")) {
    return run_role(role);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
