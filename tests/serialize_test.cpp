#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "serialize/codec.hpp"
#include "serialize/value.hpp"

namespace ndsm::serialize {
namespace {

TEST(Codec, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(3.14159);
  w.boolean(true);
  w.str("hello");
  w.bytes(Bytes{1, 2, 3});
  w.vec2(Vec2{1.5, -2.5});
  w.id(NodeId{99});

  Reader r{w.data()};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(*r.f64(), 3.14159);
  EXPECT_EQ(r.boolean(), true);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.vec2(), (Vec2{1.5, -2.5}));
  EXPECT_EQ(r.id<NodeId>(), NodeId{99});
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, VarintBoundaries) {
  for (const std::uint64_t v : std::vector<std::uint64_t>{
           0, 1, 127, 128, 16383, 16384, std::uint64_t{1} << 32,
           std::numeric_limits<std::uint64_t>::max()}) {
    Writer w;
    w.varint(v);
    Reader r{w.data()};
    EXPECT_EQ(r.varint(), v) << v;
  }
}

TEST(Codec, VarintCompactness) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Codec, SignedVarintRoundTrip) {
  for (const std::int64_t v : std::vector<std::int64_t>{
           0, -1, 1, -64, 64, std::numeric_limits<std::int64_t>::min(),
           std::numeric_limits<std::int64_t>::max()}) {
    Writer w;
    w.svarint(v);
    Reader r{w.data()};
    EXPECT_EQ(r.svarint(), v) << v;
  }
}

TEST(Codec, SmallNegativesAreCompact) {
  Writer w;
  w.svarint(-3);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Codec, TruncatedReadsFail) {
  Writer w;
  w.u32(12345);
  const Bytes full = w.data();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated{full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut)};
    Reader r{truncated};
    EXPECT_FALSE(r.u32().has_value()) << cut;
  }
}

TEST(Codec, TruncatedStringFails) {
  Writer w;
  w.str("hello world");
  Bytes data = w.data();
  data.resize(data.size() - 3);
  Reader r{data};
  EXPECT_FALSE(r.str().has_value());
}

// Satellite regression (DESIGN §15): a length prefix claiming 2^60 bytes
// must be rejected by the remaining()-clamp before any allocation — the
// old code called resize(declared) and died on hostile input.
TEST(Codec, HostileLengthPrefixRejectedWithoutAllocating) {
  Writer w;
  w.varint(1ULL << 60);
  w.u8(0xaa);  // one actual byte behind the 2^60 claim
  const Bytes hostile = w.data();
  {
    Reader r{hostile};
    EXPECT_FALSE(r.bytes().has_value());
  }
  {
    Reader r{hostile};
    EXPECT_FALSE(r.str().has_value());
  }
  {
    Reader r{hostile};
    EXPECT_FALSE(r.str_view().has_value());
  }
}

// Pin the varint wire contract: LEB128, at most kMaxVarintBytes (10)
// bytes, and the 10th byte may only carry bit 0 (63 shift bits already
// consumed). Overlong-but-in-range encodings stay accepted — peers may
// emit them — which this test pins so a future "canonical only" change
// is a deliberate wire break, not an accident.
TEST(Codec, VarintEncodingLimits) {
  // Non-canonical two-byte zero: 0x80 0x00 decodes to 0.
  {
    const Bytes overlong_zero{0x80, 0x00};
    Reader r{overlong_zero};
    EXPECT_EQ(r.varint(), 0u);
    EXPECT_TRUE(r.exhausted());
  }
  // Max u64 uses exactly 10 bytes and decodes.
  {
    Writer w;
    w.varint(std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(w.size(), kMaxVarintBytes);
    Reader r{w.data()};
    EXPECT_EQ(r.varint(), std::numeric_limits<std::uint64_t>::max());
  }
  // A 10th byte carrying any bit above bit 0 overflows u64: reject.
  {
    Bytes overflow(9, 0x80);
    overflow.push_back(0x02);
    Reader r{overflow};
    EXPECT_FALSE(r.varint().has_value());
  }
  // An 11-byte encoding is rejected even if it would decode in range.
  {
    Bytes overlong(10, 0x80);
    overlong.push_back(0x00);
    Reader r{overlong};
    EXPECT_FALSE(r.varint().has_value());
  }
}

TEST(Codec, EmptyStringAndBytes) {
  Writer w;
  w.str("");
  w.bytes({});
  Reader r{w.data()};
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), Bytes{});
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, SpecialFloats) {
  Writer w;
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  Reader r{w.data()};
  EXPECT_EQ(*r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(*r.f64(), 0.0);
}

TEST(Value, ScalarRoundTrips) {
  const std::vector<Value> values = {
      Value{},     Value{true}, Value{false},          Value{std::int64_t{-42}},
      Value{3.5},  Value{"hi"}, Value{Bytes{9, 8, 7}}, Value::wildcard(),
      Value::type_only(Value::Type::kInt),
  };
  for (const auto& v : values) {
    auto decoded = Value::from_bytes(v.to_bytes());
    ASSERT_TRUE(decoded.is_ok()) << v.to_string();
    EXPECT_EQ(decoded.value(), v) << v.to_string();
  }
}

TEST(Value, NestedContainersRoundTrip) {
  const Value v{ValueList{
      Value{1}, Value{"two"},
      Value{ValueMap{{"k", Value{3.0}}, {"nested", Value{ValueList{Value{4}}}}}}}};
  auto decoded = Value::from_bytes(v.to_bytes());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), v);
}

TEST(Value, TypeReporting) {
  EXPECT_EQ(Value{}.type(), Value::Type::kNil);
  EXPECT_EQ(Value{1}.type(), Value::Type::kInt);
  EXPECT_EQ(Value{1.0}.type(), Value::Type::kFloat);
  EXPECT_EQ(Value{"x"}.type(), Value::Type::kString);
  EXPECT_EQ(Value{true}.type(), Value::Type::kBool);
  EXPECT_EQ(Value::wildcard().type(), Value::Type::kWildcard);
}

TEST(Value, EqualityIsTyped) {
  EXPECT_NE(Value{1}, Value{1.0});  // int vs float are distinct
  EXPECT_EQ(Value{1}, Value{1});
  EXPECT_NE(Value{"1"}, Value{1});
}

TEST(Value, CorruptDecodeFails) {
  const Bytes garbage{0xff, 0x01, 0x02};
  EXPECT_FALSE(Value::from_bytes(garbage).is_ok());
  EXPECT_EQ(Value::from_bytes(garbage).code(), ErrorCode::kCorrupt);
}

TEST(Value, TruncatedListFails) {
  const Value v{ValueList{Value{1}, Value{2}, Value{3}}};
  Bytes data = v.to_bytes();
  data.resize(data.size() - 1);
  EXPECT_FALSE(Value::from_bytes(data).is_ok());
}

// Satellite: every strict prefix of a nested encoding fails closed into
// kCorrupt — no crash, no partial value, no wrong error code.
TEST(Value, TruncationAtEveryOffsetFailsClosed) {
  ValueMap inner;
  inner.emplace("temp", Value{21.5});
  inner.emplace("tags", Value{ValueList{Value{"a"}, Value{Bytes{1, 2, 3}}}});
  const Value v{ValueList{Value{std::int64_t{-7}}, Value{inner},
                          Value{"trailing string"}}};
  const Bytes full = v.to_bytes();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const Bytes prefix{full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut)};
    const auto decoded = Value::from_bytes(prefix);
    ASSERT_FALSE(decoded.is_ok()) << "prefix length " << cut;
    EXPECT_EQ(decoded.code(), ErrorCode::kCorrupt) << "prefix length " << cut;
  }
  EXPECT_TRUE(Value::from_bytes(full).is_ok());
}

TEST(Value, HugeDeclaredListRejected) {
  // A list header claiming 2^40 elements must not allocate.
  Writer w;
  w.u8(static_cast<std::uint8_t>(Value::Type::kList));
  w.varint(1ULL << 40);
  Reader r{w.data()};
  EXPECT_FALSE(Value::decode(r).has_value());
}

TEST(TupleMatch, ExactMatch) {
  const Tuple stored{Value{"temp"}, Value{21}, Value{true}};
  EXPECT_TRUE(tuple_matches(stored, stored));
}

TEST(TupleMatch, WildcardMatchesAnything) {
  const Tuple tmpl{Value{"temp"}, Value::wildcard()};
  EXPECT_TRUE(tuple_matches(tmpl, Tuple{Value{"temp"}, Value{42}}));
  EXPECT_TRUE(tuple_matches(tmpl, Tuple{Value{"temp"}, Value{"str"}}));
  EXPECT_FALSE(tuple_matches(tmpl, Tuple{Value{"hum"}, Value{42}}));
}

TEST(TupleMatch, TypeOnlyMatchesType) {
  const Tuple tmpl{Value::type_only(Value::Type::kInt)};
  EXPECT_TRUE(tuple_matches(tmpl, Tuple{Value{5}}));
  EXPECT_FALSE(tuple_matches(tmpl, Tuple{Value{5.0}}));
  EXPECT_FALSE(tuple_matches(tmpl, Tuple{Value{"5"}}));
}

TEST(TupleMatch, ArityMustAgree) {
  const Tuple tmpl{Value::wildcard()};
  EXPECT_FALSE(tuple_matches(tmpl, Tuple{Value{1}, Value{2}}));
  EXPECT_FALSE(tuple_matches(tmpl, Tuple{}));
}

TEST(TupleCodec, RoundTrip) {
  const Tuple t{Value{"sensor"}, Value{7}, Value{98.6}, Value::wildcard()};
  auto decoded = decode_tuple(encode_tuple(t));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), t);
}

TEST(TupleCodec, EmptyTuple) {
  auto decoded = decode_tuple(encode_tuple(Tuple{}));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(Codec, StrViewIsZeroCopy) {
  Writer w;
  w.str("hello view");
  const Bytes buf = std::move(w).take();
  Reader r{buf};
  const auto v = r.str_view();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello view");
  // The view aliases the encoded buffer rather than copying out of it.
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(v->data()), buf.data());
  EXPECT_LE(reinterpret_cast<const std::uint8_t*>(v->data()) + v->size(),
            buf.data() + buf.size());
}

TEST(Codec, StrViewTruncatedFails) {
  Writer w;
  w.varint(100);  // declares 100 bytes that are not there
  Reader r{w.data()};
  EXPECT_FALSE(r.str_view().has_value());
}

TEST(Value, EncodedSizeIsExact) {
  ValueMap inner;
  inner.emplace("pi", Value{3.14159});
  const std::vector<Value> samples = {
      Value{},
      Value{true},
      Value{std::int64_t{-1234567}},
      Value{2.5},
      Value{"a moderately sized string payload"},
      Value{Bytes(300, 0x5a)},
      Value{ValueList{Value{1}, Value{"two"}, Value{inner}}},
      Value::wildcard(),
      Value::type_only(Value::Type::kInt),
  };
  for (const auto& v : samples) {
    EXPECT_EQ(v.encoded_size(), v.to_bytes().size()) << v.to_string();
  }
}

// Satellite regression: encoding a flat map must not reallocate after the
// single up-front reserve computed from encoded_size().
TEST(Value, FlatMapEncodeReservesOnce) {
  ValueMap m;
  for (int i = 0; i < 32; ++i) {
    m.emplace("key_" + std::to_string(i), Value{std::int64_t{i} * 1000});
  }
  const Value v{m};

  Writer w;
  w.reserve(v.encoded_size());
  const auto* data_before = w.data().data();
  const auto cap_before = w.data().capacity();
  v.encode(w);
  EXPECT_EQ(w.data().data(), data_before);       // buffer never moved
  EXPECT_EQ(w.data().capacity(), cap_before);    // => zero reallocations
  EXPECT_EQ(w.size(), v.encoded_size());
}

// Property sweep: random values round-trip through binary encoding.
class ValueFuzzRoundTrip : public ::testing::TestWithParam<int> {};

Value random_value(Rng& rng, int depth) {
  const int pick = static_cast<int>(rng.uniform_int(0, depth > 2 ? 5 : 7));
  switch (pick) {
    case 0: return Value{};
    case 1: return Value{rng.bernoulli(0.5)};
    case 2: return Value{static_cast<std::int64_t>(rng.next_u64())};
    case 3: return Value{rng.uniform(-1e9, 1e9)};
    case 4: {
      std::string s;
      const auto len = rng.uniform_int(0, 20);
      for (int i = 0; i < len; ++i) s += static_cast<char>(rng.uniform_int(32, 126));
      return Value{s};
    }
    case 5: {
      Bytes b;
      const auto len = rng.uniform_int(0, 16);
      for (int i = 0; i < len; ++i) b.push_back(static_cast<std::uint8_t>(rng.next_u32()));
      return Value{b};
    }
    case 6: {
      ValueList list;
      const auto len = rng.uniform_int(0, 4);
      for (int i = 0; i < len; ++i) list.push_back(random_value(rng, depth + 1));
      return Value{list};
    }
    default: {
      ValueMap map;
      const auto len = rng.uniform_int(0, 4);
      for (int i = 0; i < len; ++i) {
        map.emplace("k" + std::to_string(i), random_value(rng, depth + 1));
      }
      return Value{map};
    }
  }
}

TEST_P(ValueFuzzRoundTrip, EncodeDecodeIdentity) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  for (int i = 0; i < 50; ++i) {
    const Value v = random_value(rng, 0);
    const Bytes encoded = v.to_bytes();
    EXPECT_EQ(v.encoded_size(), encoded.size()) << v.to_string();
    auto decoded = Value::from_bytes(encoded);
    ASSERT_TRUE(decoded.is_ok()) << v.to_string();
    EXPECT_EQ(decoded.value(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueFuzzRoundTrip, ::testing::Range(1, 9));

}  // namespace
}  // namespace ndsm::serialize
