#include <gtest/gtest.h>

#include "biblio/corpus.hpp"

namespace ndsm::biblio {
namespace {

TEST(Figure1, ReferenceSeriesMatchesPaperText) {
  const auto& series = figure1_reference();
  // §2: zero before 1993, first article 1993, 7 in 1994, ~170/yr at the end.
  for (int year = 1989; year <= 1992; ++year) EXPECT_EQ(series.at(year), 0) << year;
  EXPECT_EQ(series.at(1993), 1);
  EXPECT_EQ(series.at(1994), 7);
  EXPECT_GE(series.at(2000), 160);
  EXPECT_LE(series.at(2001), 200);
  // Monotone growth across the series.
  int prev = -1;
  for (const auto& [year, count] : series) {
    EXPECT_GE(count, prev);
    prev = count;
  }
}

TEST(Corpus, MiddlewareHistogramMatchesFigure1Exactly) {
  const auto corpus = Corpus::build_ieee_model();
  const auto histogram = corpus.histogram({"middleware"}, 1989, 2001);
  for (const auto& [year, count] : figure1_reference()) {
    EXPECT_EQ(histogram.at(year), count) << year;
  }
}

TEST(Corpus, QueriesUseAndSemantics) {
  const auto corpus = Corpus::build_ieee_model();
  const auto mw = corpus.query({"middleware"});
  const auto mw_and_net = corpus.query({"middleware", "network"});
  EXPECT_LT(mw_and_net.size(), mw.size());
  EXPECT_GT(mw_and_net.size(), 0u);
  for (const Entry* e : mw_and_net) {
    bool has_net = false;
    for (const auto& kw : e->keywords) has_net = has_net || kw.find("network") != std::string::npos;
    EXPECT_TRUE(has_net || e->title.find("network") != std::string::npos);
  }
}

TEST(Corpus, BackgroundLiteraturesDwarfMiddleware) {
  const auto corpus = Corpus::build_ieee_model();
  const auto mw = corpus.query({"middleware"}).size();
  const auto ds = corpus.query({"distributed systems"}).size();
  const auto net = corpus.query({"network"}).size();
  EXPECT_GT(ds, mw);
  EXPECT_GT(net, ds);
}

TEST(Corpus, MiddlewareCorrelatesWithNetworksAndDistributedSystems) {
  // §2: "the necessity for middleware followed the development of the
  // networks and distributed systems. This positive correlation..."
  const auto corpus = Corpus::build_ieee_model();
  EXPECT_GT(corpus.correlation({"middleware"}, {"network"}, 1989, 2001), 0.8);
  EXPECT_GT(corpus.correlation({"middleware"}, {"distributed systems"}, 1989, 2001), 0.8);
  EXPECT_GT(corpus.correlation({"middleware"}, {"wireless network"}, 1989, 2001), 0.8);
}

TEST(Corpus, HistogramZeroFillsEmptyYears) {
  const auto corpus = Corpus::build_ieee_model();
  const auto histogram = corpus.histogram({"middleware"}, 1985, 1995);
  EXPECT_EQ(histogram.size(), 11u);
  EXPECT_EQ(histogram.at(1985), 0);
  EXPECT_EQ(histogram.at(1990), 0);
}

TEST(Corpus, DeterministicConstruction) {
  const auto a = Corpus::build_ieee_model();
  const auto b = Corpus::build_ieee_model();
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.histogram({"middleware"}, 1989, 2001), b.histogram({"middleware"}, 1989, 2001));
}

TEST(Corpus, EmptyQueryMatchesEverything) {
  const auto corpus = Corpus::build_ieee_model();
  EXPECT_EQ(corpus.query({}).size(), corpus.size());
}

TEST(Corpus, UnknownTermMatchesNothing) {
  const auto corpus = Corpus::build_ieee_model();
  EXPECT_TRUE(corpus.query({"quantum blockchain"}).empty());
  EXPECT_DOUBLE_EQ(corpus.correlation({"quantum blockchain"}, {"middleware"}, 1989, 2001),
                   0.0);
}

}  // namespace
}  // namespace ndsm::biblio
