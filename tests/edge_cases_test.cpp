// Edge-case coverage across modules: boundary values, degenerate
// configurations and API corners not exercised by the scenario suites.

#include <gtest/gtest.h>

#include "net/world.hpp"
#include "qos/benefit.hpp"
#include "qos/matcher.hpp"
#include "serialize/value.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "transport/reliable.hpp"

namespace ndsm {
namespace {

using serialize::Value;

TEST(EdgeIds, ToStringAndInvalid) {
  EXPECT_EQ(NodeId{42}.to_string(), "42");
  EXPECT_FALSE(NodeId::invalid().valid());
  EXPECT_EQ(NodeId::invalid().value(), NodeId::kInvalid);
}

TEST(EdgeValue, ToStringForms) {
  EXPECT_EQ(Value{}.to_string(), "nil");
  EXPECT_EQ(Value{true}.to_string(), "true");
  EXPECT_EQ(Value{-5}.to_string(), "-5");
  EXPECT_EQ(Value{"hi"}.to_string(), "\"hi\"");
  EXPECT_EQ(Value::wildcard().to_string(), "?");
  EXPECT_EQ((Value{serialize::ValueList{Value{1}, Value{2}}}.to_string()), "[1, 2]");
  EXPECT_EQ((Value{serialize::ValueMap{{"k", Value{1}}}}.to_string()), "{k: 1}");
  const Value bytes_value{Bytes{1, 2, 3}};
  EXPECT_EQ(bytes_value.to_string(), "bytes[3]");
}

TEST(EdgeBenefit, ThresholdExtremes) {
  const auto linear = qos::BenefitFunction::linear(duration::seconds(1), duration::seconds(3));
  EXPECT_EQ(linear.deadline_for(0.0), duration::seconds(3));
  EXPECT_EQ(linear.deadline_for(1.0), duration::seconds(1));
  // Out-of-range thresholds clamp rather than crash.
  EXPECT_EQ(linear.deadline_for(-0.5), duration::seconds(3));
  EXPECT_EQ(linear.deadline_for(2.0), duration::seconds(1));
  const auto sigmoid = qos::BenefitFunction::sigmoid(duration::seconds(5), 1.0);
  EXPECT_EQ(sigmoid.deadline_for(0.0), kTimeNever);
  EXPECT_EQ(sigmoid.deadline_for(1.0), kTimeNever);
}

TEST(EdgeBenefit, ConstantClamps) {
  EXPECT_DOUBLE_EQ(qos::BenefitFunction::constant(7.0).eval(0), 1.0);
  EXPECT_DOUBLE_EQ(qos::BenefitFunction::constant(-1.0).eval(0), 0.0);
}

TEST(EdgeMatcher, ZeroWeightsScoreZero) {
  qos::ConsumerQos c;
  c.service_type = "x";
  c.attribute_weight = 0;
  c.reliability_weight = 0;
  c.proximity_weight = 0;
  c.power_weight = 0;
  qos::SupplierQos s;
  s.service_type = "x";
  const auto e = qos::Matcher::evaluate(c, s);
  EXPECT_TRUE(e.feasible);
  EXPECT_DOUBLE_EQ(e.score, 0.0);
}

TEST(EdgeMatcher, RankStableOnTies) {
  qos::ConsumerQos c;
  c.service_type = "x";
  qos::SupplierQos s;
  s.service_type = "x";
  const std::vector<qos::SupplierQos> suppliers{s, s, s};
  const auto ranked = qos::Matcher::rank(c, suppliers);
  EXPECT_EQ(ranked, (std::vector<std::size_t>{0, 1, 2}));  // index order on ties
}

TEST(EdgeWorld, MediaOfAndAllNodes) {
  sim::Simulator sim;
  net::World world{sim};
  const MediumId a = world.add_medium(net::ethernet100());
  const MediumId b = world.add_medium(net::wifi80211());
  const NodeId n = world.add_node({0, 0});
  world.attach(n, a);
  world.attach(n, b);
  world.attach(n, a);  // duplicate attach is a no-op
  EXPECT_EQ(world.media_of(n).size(), 2u);
  EXPECT_EQ(world.all_nodes().size(), 1u);
  EXPECT_EQ(world.node_count(), 1u);
  EXPECT_EQ(world.medium_spec(a).name, "ethernet-100");
}

TEST(EdgeWorld, SetMediumRangeChangesReachability) {
  sim::Simulator sim;
  net::World world{sim};
  const MediumId m = world.add_medium(net::wifi80211(10, 0));
  const NodeId a = world.add_node({0, 0});
  const NodeId b = world.add_node({50, 0});
  world.attach(a, m);
  world.attach(b, m);
  EXPECT_FALSE(world.in_link_range(a, b));
  world.set_medium_range(m, 100);
  EXPECT_TRUE(world.in_link_range(a, b));
}

TEST(EdgeWorld, ReviveAfterBatteryDepletionFails) {
  sim::Simulator sim;
  net::World world{sim};
  const NodeId n = world.add_node({0, 0}, net::Battery{1.0});
  world.drain(n, 2.0);
  EXPECT_FALSE(world.alive(n));
  world.revive(n);  // battery is gone: stays dead
  EXPECT_FALSE(world.alive(n));
}

TEST(EdgeWorld, KillIsIdempotent) {
  sim::Simulator sim;
  net::World world{sim};
  const NodeId n = world.add_node({0, 0});
  int deaths = 0;
  world.set_death_handler([&](NodeId) { deaths++; });
  world.kill(n);
  world.kill(n);
  EXPECT_EQ(deaths, 1);
}

TEST(EdgeWorld, BroadcastOnSpecificMediumOnly) {
  sim::Simulator sim;
  net::World world{sim};
  const MediumId m1 = world.add_medium(net::ethernet100());
  const MediumId m2 = world.add_medium(net::ethernet100());
  const NodeId src = world.add_node({0, 0});
  const NodeId on1 = world.add_node({0, 0});
  const NodeId on2 = world.add_node({0, 0});
  world.attach(src, m1);
  world.attach(src, m2);
  world.attach(on1, m1);
  world.attach(on2, m2);
  int got1 = 0;
  int got2 = 0;
  world.set_handler(on1, net::Proto::kApp, [&](const net::LinkFrame&) { got1++; });
  world.set_handler(on2, net::Proto::kApp, [&](const net::LinkFrame&) { got2++; });
  ASSERT_TRUE(world.link_broadcast(src, net::Proto::kApp, {}, m1).is_ok());
  sim.run_all();
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got2, 0);
  ASSERT_TRUE(world.link_broadcast(src, net::Proto::kApp, {}).is_ok());  // all media
  sim.run_all();
  EXPECT_EQ(got1, 2);
  EXPECT_EQ(got2, 1);
}

TEST(EdgeTimer, SetIntervalTakesEffectNextArm) {
  sim::Simulator sim;
  std::vector<Time> fires;
  sim::PeriodicTimer timer{sim, 100, [&] { fires.push_back(sim.now()); }};
  timer.start();
  sim.run_until(150);
  timer.set_interval(300);
  sim.run_until(1000);
  ASSERT_GE(fires.size(), 3u);
  EXPECT_EQ(fires[0], 100);
  EXPECT_EQ(fires[1], 200);  // already-armed tick keeps the old interval
  EXPECT_EQ(fires[2], 500);  // then the new interval applies
}

TEST(EdgeTransport, ZeroAndOneFragmentBoundaries) {
  testing::Lan lan{2};
  // 96-byte default fragment: payloads of 95, 96, 97 exercise the boundary.
  std::vector<std::size_t> sizes{95, 96, 97};
  std::vector<Bytes> got;
  lan.transport(1).set_receiver(transport::ports::kApp,
                                [&](NodeId, const Bytes& b) { got.push_back(b); });
  for (const auto size : sizes) {
    lan.transport(0).send(lan.nodes[1], transport::ports::kApp,
                          Bytes(size, static_cast<std::uint8_t>(size)));
  }
  lan.sim.run_until(duration::seconds(2));
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(got[i].size(), sizes[i]);
  }
  // 97 bytes needed 2 fragments; 95 and 96 one each.
  EXPECT_EQ(lan.transport(0).stats().fragments_sent, 4u);
}

TEST(EdgeTransport, ClearReceiverDropsSilently) {
  testing::Lan lan{2};
  int got = 0;
  lan.transport(1).set_receiver(transport::ports::kApp,
                                [&](NodeId, const Bytes&) { got++; });
  lan.transport(1).clear_receiver(transport::ports::kApp);
  bool completed = false;
  lan.transport(0).send(lan.nodes[1], transport::ports::kApp, to_bytes("x"),
                        [&](Status s) { completed = s.is_ok(); });
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(got, 0);
  EXPECT_TRUE(completed);  // transport-level delivery still acknowledged
}

TEST(EdgeSim, ZeroDelayEventsRunInOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.schedule_after(0, [&] {
    order.push_back(1);
    sim.schedule_after(0, [&] { order.push_back(3); });
    order.push_back(2);
  });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 0);
}

}  // namespace
}  // namespace ndsm
