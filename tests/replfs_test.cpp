// apps::replfs tests. Three layers:
//   Replfs       unit + protocol-path tests on a sim LAN (commit on all
//                replicas, multi-block + empty values, write serialization,
//                targeted block repair, WAL recovery, in-doubt rehydration,
//                exactly-once commits, hostile-traffic bounds, clean abort);
//   ReplfsChaos  the flagship soak — 5 replicas + 1 client under composed
//                faults including replica crash/restart, proving every
//                acked write lands on every replica, twin-run
//                digest-identical (CI's `ctest -R Chaos` picks it up);
//   ReplfsUdp    the same client/server pair unmodified on loopback UDP.

#include "apps/replfs/replfs.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "net/faults.hpp"
#include "net/udp_stack.hpp"
#include "node/runtime.hpp"
#include "recovery/wal.hpp"
#include "serialize/codec.hpp"
#include "test_helpers.hpp"
#include "transport/ports.hpp"

namespace ndsm::apps::replfs {
namespace {

// Control kinds on port kReplfs (mirrors the implementation's private
// enum; tests forge messages to drive server paths directly).
constexpr std::uint8_t kKindCommit = 4;
constexpr std::uint8_t kKindCommitAck = 5;

// N replicas (as Runtime services, so crash()/restart() rebuilds them on
// surviving storage) plus one client node.
struct ReplfsNet {
  testing::Lan lan;
  std::vector<NodeId> server_ids;
  std::unique_ptr<Client> client;

  explicit ReplfsNet(std::size_t n_servers, std::uint64_t seed = 42, ReplfsConfig cfg = {})
      : lan(n_servers + 1, seed) {
    for (std::size_t i = 0; i < n_servers; ++i) {
      lan.runtime(i).add_service<Server>("replfs", [cfg](node::Runtime& rt) {
        return std::make_unique<Server>(rt.transport(), rt.net_stack(),
                                        rt.storage("replfs-wal"), cfg);
      });
      server_ids.push_back(lan.nodes[i]);
    }
    client = std::make_unique<Client>(lan.transport(n_servers),
                                      lan.runtime(n_servers).net_stack(), server_ids, cfg);
  }

  Server& server(std::size_t i) { return *lan.runtime(i).service<Server>("replfs"); }
  void run(Time d) { lan.sim.run_until(lan.sim.now() + d); }
};

TEST(Replfs, WriteCommitsOnAllReplicas) {
  ReplfsNet net{3};
  Status result{ErrorCode::kCancelled, "pending"};
  net.client->write("greeting", to_bytes("hello replicas"),
                    [&](Status s) { result = s; });
  net.run(duration::seconds(5));

  ASSERT_TRUE(result.is_ok()) << result.to_string();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(net.server(i).store().count("greeting"), 1u) << "replica " << i;
    EXPECT_EQ(to_string(net.server(i).store().at("greeting")), "hello replicas");
    EXPECT_EQ(net.server(i).stats().commits_applied, 1u);
    EXPECT_EQ(net.server(i).indoubt_count(), 0u);
    EXPECT_EQ(net.server(i).digest(), net.server(0).digest());
  }
  EXPECT_EQ(net.client->stats().writes_committed, 1u);
  ASSERT_EQ(net.client->committed_log().size(), 1u);
  EXPECT_EQ(net.client->committed_log()[0].key, "greeting");
  EXPECT_EQ(net.client->committed_log()[0].checksum, fnv1a(to_bytes("hello replicas")));
  EXPECT_EQ(net.client->commit_latency().count(), 1u);
  // One multicast per block reached all three replicas: no repair needed.
  EXPECT_EQ(net.client->stats().blocks_multicast, 1u);
  EXPECT_EQ(net.client->stats().blocks_repaired, 0u);
}

TEST(Replfs, MultiBlockAndEmptyValuesRoundTrip) {
  ReplfsConfig cfg;
  cfg.block_bytes = 128;
  ReplfsNet net{3, 42, cfg};
  Bytes big(1000, 0x5a);  // 8 blocks of 128 = 1024 > 1000 -> 8 fragments
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 7);
  }
  int done = 0;
  net.client->write("big", big, [&](Status s) { done += s.is_ok() ? 1 : 0; });
  net.client->write("empty", Bytes{}, [&](Status s) { done += s.is_ok() ? 1 : 0; });
  net.run(duration::seconds(10));

  ASSERT_EQ(done, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(net.server(i).store().at("big"), big) << "replica " << i;
    EXPECT_EQ(net.server(i).store().at("empty"), Bytes{});
    EXPECT_GE(net.server(i).stats().blocks_staged, 9u);  // 8 + 1 empty block
  }
  EXPECT_EQ(net.client->stats().blocks_multicast, 9u);
}

TEST(Replfs, WritesAreSerializedAndApplyInIssueOrder) {
  ReplfsNet net{3};
  int committed = 0;
  for (int i = 0; i < 6; ++i) {
    net.client->write("hot", to_bytes("version " + std::to_string(i)),
                      [&](Status s) { committed += s.is_ok() ? 1 : 0; });
  }
  EXPECT_EQ(net.client->pending_writes(), 6u);  // one head, five queued
  net.run(duration::seconds(15));

  ASSERT_EQ(committed, 6);
  ASSERT_EQ(net.client->committed_log().size(), 6u);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_GT(net.client->committed_log()[i].commit_id,
              net.client->committed_log()[i - 1].commit_id);
  }
  // Serialized writes: the final state everywhere is the last version.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(to_string(net.server(i).store().at("hot")), "version 5");
    EXPECT_EQ(net.server(i).stats().commits_applied, 6u);
  }
}

TEST(Replfs, ReadBackFromEachReplica) {
  ReplfsNet net{3};
  bool written = false;
  net.client->write("k", to_bytes("v"), [&](Status s) { written = s.is_ok(); });
  net.run(duration::seconds(5));
  ASSERT_TRUE(written);

  int found = 0, missing = 0;
  for (const NodeId server : net.server_ids) {
    net.client->read(server, "k", [&](bool ok, const Bytes& value) {
      found += (ok && to_string(value) == "v") ? 1 : 0;
    });
    net.client->read(server, "nope", [&](bool ok, const Bytes&) {
      missing += ok ? 0 : 1;
    });
  }
  net.run(duration::seconds(2));
  EXPECT_EQ(found, 3);
  EXPECT_EQ(missing, 3);
}

TEST(Replfs, OfflineReplicaWalkedBackThroughTargetedRepair) {
  ReplfsNet net{3};
  // Replica 1 is link-dead while the blocks multicast flies past it.
  net.lan.world.kill(net.lan.nodes[1]);
  Status result{ErrorCode::kCancelled, "pending"};
  net.client->write("repaired", to_bytes("made it anyway"),
                    [&](Status s) { result = s; });
  net.run(duration::seconds(1));
  EXPECT_EQ(result.code(), ErrorCode::kCancelled);  // still pending
  net.lan.world.revive(net.lan.nodes[1]);
  net.run(duration::seconds(10));

  ASSERT_TRUE(result.is_ok()) << result.to_string();
  // The revived replica never saw the multicast: its prepare answered with
  // the missing-block list and the client repaired over reliable unicast.
  EXPECT_GE(net.server(1).stats().votes_missing, 1u);
  EXPECT_GE(net.client->stats().blocks_repaired, 1u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(to_string(net.server(i).store().at("repaired")), "made it anyway");
  }
}

TEST(Replfs, CrashedReplicaRehydratesStoreFromWal) {
  ReplfsNet net{3};
  int committed = 0;
  for (int i = 0; i < 3; ++i) {
    net.client->write("key-" + std::to_string(i), to_bytes("value-" + std::to_string(i)),
                      [&](Status s) { committed += s.is_ok() ? 1 : 0; });
  }
  net.run(duration::seconds(10));
  ASSERT_EQ(committed, 3);
  const std::uint64_t healthy_digest = net.server(0).digest();

  // Fail-stop replica 0: services die, the WAL's StableStorage survives.
  net.lan.runtime(0).crash();
  net.run(duration::seconds(1));
  net.lan.runtime(0).restart();
  net.run(duration::seconds(1));

  Server& reborn = net.server(0);
  EXPECT_GT(reborn.stats().wal_records_replayed, 0u);
  EXPECT_EQ(reborn.digest(), healthy_digest);
  EXPECT_EQ(reborn.store().size(), 3u);
  EXPECT_EQ(to_string(reborn.store().at("key-1")), "value-1");
  EXPECT_EQ(reborn.indoubt_count(), 0u);

  // And it is a full protocol participant again.
  bool again = false;
  net.client->write("key-3", to_bytes("value-3"), [&](Status s) { again = s.is_ok(); });
  net.run(duration::seconds(5));
  ASSERT_TRUE(again);
  EXPECT_EQ(to_string(reborn.store().at("key-3")), "value-3");
}

TEST(Replfs, InDoubtTransactionSettledByLateCommitExactlyOnce) {
  // Replica with a Begin+Put forced into its log but no Commit: the
  // in-doubt state a crash-between-vote-and-commit leaves behind.
  testing::Lan lan{2};
  constexpr std::uint64_t kTx = 0x42;
  {
    recovery::WriteAheadLog wal{lan.runtime(0).storage("replfs-wal")};
    wal.append(recovery::LogKind::kBegin, kTx);
    wal.append(recovery::LogKind::kPut, kTx, "indoubt-key",
               serialize::Value(to_bytes("indoubt-value")));
  }
  lan.runtime(0).add_service<Server>("replfs", [](node::Runtime& rt) {
    return std::make_unique<Server>(rt.transport(), rt.net_stack(),
                                    rt.storage("replfs-wal"));
  });
  Server& server = *lan.runtime(0).service<Server>("replfs");
  EXPECT_EQ(server.stats().indoubt_recovered, 1u);
  EXPECT_EQ(server.indoubt_count(), 1u);
  EXPECT_EQ(server.store().count("indoubt-key"), 0u);  // not applied yet

  // Node 1 plays the re-driving coordinator: send the commit twice.
  int acks = 0;
  lan.transport(1).set_receiver(transport::ports::kReplfs,
                                [&](NodeId, const Bytes& payload) {
                                  serialize::Reader r{payload};
                                  if (r.u8().value_or(0) == kKindCommitAck) acks++;
                                });
  const auto send_commit = [&] {
    serialize::Writer w;
    w.u8(kKindCommit);
    w.varint(kTx);
    lan.transport(1).send(lan.nodes[0], transport::ports::kReplfs, std::move(w).take());
  };
  send_commit();
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(server.indoubt_count(), 0u);
  EXPECT_EQ(to_string(server.store().at("indoubt-key")), "indoubt-value");
  EXPECT_EQ(server.stats().commits_applied, 1u);
  EXPECT_EQ(acks, 1);

  // The duplicate re-acks without re-applying: exactly-once.
  send_commit();
  lan.sim.run_until(duration::seconds(4));
  EXPECT_EQ(server.stats().commits_applied, 1u);
  EXPECT_EQ(server.stats().duplicate_commits, 1u);
  EXPECT_EQ(acks, 2);
}

TEST(Replfs, HostileTrafficIsCountedAndStagingIsBounded) {
  ReplfsConfig cfg;
  cfg.max_staged_blocks = 8;
  testing::Lan lan{2};
  lan.runtime(0).add_service<Server>("replfs", [cfg](node::Runtime& rt) {
    return std::make_unique<Server>(rt.transport(), rt.net_stack(),
                                    rt.storage("replfs-wal"), cfg);
  });
  Server& server = *lan.runtime(0).service<Server>("replfs");
  net::Stack& attacker = lan.runtime(1).net_stack();

  // Undecodable data frames and control messages are dropped, counted.
  ASSERT_TRUE(attacker.broadcast_frame(net::Proto::kReplfsData, Bytes{}).is_ok());
  ASSERT_TRUE(
      attacker.broadcast_frame(net::Proto::kReplfsData, Bytes{0xff, 0x01}).is_ok());
  lan.transport(1).send(lan.nodes[0], transport::ports::kReplfs, Bytes{});
  lan.sim.run_until(duration::seconds(1));
  EXPECT_GE(server.stats().malformed_dropped, 3u);

  // A stray-block flood cannot grow staging past the cap.
  for (std::uint64_t commit = 1; commit <= 30; ++commit) {
    serialize::Writer w;
    w.varint(commit);
    w.varint(0);  // block index
    w.str("stray");
    w.bytes(to_bytes("x"));
    ASSERT_TRUE(
        attacker.broadcast_frame(net::Proto::kReplfsData, std::move(w).take()).is_ok());
  }
  lan.sim.run_until(duration::seconds(2));
  EXPECT_EQ(server.stats().blocks_staged, 30u);
  EXPECT_GE(server.stats().blocks_evicted, 22u);  // all but the cap's worth
  EXPECT_TRUE(server.store().empty());            // nothing ever committed
}

TEST(Replfs, WriteFailsCleanlyWhenAReplicaStaysDown) {
  ReplfsConfig cfg;
  cfg.retry_period = duration::millis(200);
  cfg.max_write_attempts = 4;
  ReplfsNet net{3, 42, cfg};
  net.lan.world.kill(net.lan.nodes[2]);  // never comes back

  Status result = Status::ok();
  net.client->write("doomed", to_bytes("nobody will ack this"),
                    [&](Status s) { result = s; });
  net.run(duration::seconds(10));

  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(net.client->stats().writes_failed, 1u);
  EXPECT_EQ(net.client->pending_writes(), 0u);
  // The abort cleaned the surviving replicas: no store entry, no in-doubt
  // transaction left behind.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(net.server(i).store().count("doomed"), 0u) << "replica " << i;
    EXPECT_EQ(net.server(i).indoubt_count(), 0u);
    EXPECT_EQ(net.server(i).stats().aborts, 1u);
  }
}

// ---------------------------------------------------------------------------
// Chaos soak: the flagship acceptance run. Every write the client acked
// must be present on every replica, through crash/restart and partitions.

std::string replfs_chaos_run(std::uint64_t seed) {
  constexpr std::size_t kServers = 5;
  constexpr int kWrites = 25;
  ReplfsNet net{kServers, seed};
  testing::Lan& lan = net.lan;

  net::FaultPlan faults{lan.world, seed ^ 0xfa157};
  std::map<NodeId, std::size_t> index;
  for (std::size_t i = 0; i < kServers; ++i) index[lan.nodes[i]] = i;
  faults.set_lifecycle_hooks(
      [&](NodeId id) { lan.runtime(index.at(id)).crash(); },
      [&](NodeId id) { lan.runtime(index.at(id)).restart(); });
  faults.burst_loss(lan.medium, net::BurstLossSpec{0.01, 0.2, 0.0, 0.5});
  faults.duplication(0.05, duration::millis(50));
  faults.jitter(0.10, duration::millis(50));  // < initial_rto
  faults.crash(duration::seconds(4), lan.nodes[1], duration::seconds(2));
  faults.crash(duration::seconds(9), lan.nodes[3], duration::seconds(3));
  faults.crash(duration::seconds(15), lan.nodes[1], duration::seconds(2));
  faults.partition(duration::seconds(6), {lan.nodes[2]}, duration::seconds(2));
  faults.partition(duration::seconds(12), {lan.nodes[0], lan.nodes[4]},
                   duration::seconds(2));

  // Issue writes over time so faults land mid-protocol, not before or
  // after the workload. Values span one to four blocks; one hot key is
  // rewritten to pin apply-in-order.
  std::map<std::string, Bytes> expected;
  int resolved = 0, failed = 0;
  for (int i = 0; i < kWrites; ++i) {
    const std::string key = (i % 5 == 4) ? "hot" : "file-" + std::to_string(i);
    Bytes value(static_cast<std::size_t>(1 + (i % 4) * 600), 0);
    for (std::size_t b = 0; b < value.size(); ++b) {
      value[b] = static_cast<std::uint8_t>(i * 31 + b);
    }
    expected[key] = value;
    lan.sim.schedule_after(duration::millis(600 * i), [&, key, value] {
      net.client->write(key, value, [&](Status s) {
        resolved++;
        failed += s.is_ok() ? 0 : 1;
      });
    });
  }

  while (resolved < kWrites && lan.sim.now() < duration::seconds(240)) {
    lan.sim.run_until(lan.sim.now() + duration::seconds(1));
  }
  lan.sim.run_until(lan.sim.now() + duration::seconds(2));  // settle late acks

  EXPECT_EQ(resolved, kWrites) << "writes stuck under chaos";
  EXPECT_EQ(failed, 0) << "all faults heal, so every write must commit";
  EXPECT_GE(faults.stats().crashes, 3u);
  EXPECT_GE(faults.stats().restarts, 3u);

  // THE guarantee: every acked write is durably applied on every replica.
  for (std::size_t i = 0; i < kServers; ++i) {
    const Server& server = net.server(i);
    EXPECT_EQ(server.store(), expected) << "replica " << i << " diverged";
    EXPECT_EQ(server.indoubt_count(), 0u) << "replica " << i;
    EXPECT_EQ(server.digest(), net.server(0).digest());
  }
  EXPECT_EQ(net.client->committed_log().size(), static_cast<std::size_t>(kWrites));
  // Reliable-transport hygiene under faults: nothing malformed anywhere.
  for (std::size_t i = 0; i <= kServers; ++i) {
    EXPECT_EQ(lan.transport(i).stats().malformed_dropped, 0u) << "node " << i;
  }

  std::ostringstream dump;
  dump << lan.sim.digest() << ":" << lan.sim.now() << "|c:" << net.client->digest();
  for (std::size_t i = 0; i < kServers; ++i) {
    dump << "|" << net.server(i).digest() << "," << net.server(i).stats().commits_applied
         << "," << net.server(i).stats().duplicate_commits << ","
         << net.server(i).stats().commit_nacks << ","
         << net.server(i).stats().indoubt_recovered;
  }
  dump << "|f:" << faults.stats().crashes << "," << faults.stats().burst_drops << ","
       << faults.stats().partition_drops << "," << faults.stats().duplicates_injected;
  return dump.str();
}

TEST(ReplfsChaos, AckedWritesSurviveCrashRestartAndPartitions) {
  replfs_chaos_run(0xd00d);
}

TEST(ReplfsChaos, TwinRunsAreByteIdentical) {
  const std::string a = replfs_chaos_run(0xfeed);
  const std::string b = replfs_chaos_run(0xfeed);
  EXPECT_EQ(a, b) << "same seed, same faults: the soak must be deterministic";
  const std::string c = replfs_chaos_run(0xfeed + 1);
  EXPECT_NE(a, c) << "different seed should explore a different trajectory";
}

// ---------------------------------------------------------------------------
// Real sockets: the identical client/server pair over loopback UDP.

TEST(ReplfsUdp, CommitAndReadBackOverLoopback) {
  const auto base = static_cast<std::uint16_t>(26000 + (getpid() % 1500) * 8);
  const std::vector<NodeId> everyone{NodeId{1}, NodeId{2}, NodeId{3}};
  const std::vector<NodeId> servers{NodeId{1}, NodeId{2}};
  net::UdpStackConfig ncfg;
  ncfg.port_base = base;
  ncfg.peers = everyone;
  net::UdpStack s1{NodeId{1}, ncfg};
  net::UdpStack s2{NodeId{2}, ncfg};
  net::UdpStack s3{NodeId{3}, ncfg};
  node::StackConfig scfg;
  scfg.router = node::RouterPolicy::kFlooding;
  node::Runtime r1{s1, scfg};
  node::Runtime r2{s2, scfg};
  node::Runtime r3{s3, scfg};
  for (node::Runtime* rt : {&r1, &r2}) {
    rt->add_service<Server>("replfs", [](node::Runtime& r) {
      return std::make_unique<Server>(r.transport(), r.net_stack(),
                                      r.storage("replfs-wal"));
    });
  }
  ReplfsConfig ccfg;
  ccfg.retry_period = duration::millis(100);  // loopback: re-drive fast
  Client client{r3.transport(), s3, servers, ccfg};

  const auto pump_until = [&](const std::function<bool()>& pred, Time budget) {
    const Time until = s1.now() + budget;
    while (!pred() && s1.now() < until) {
      s1.poll_once(duration::millis(1));
      s2.poll_once(duration::millis(1));
      s3.poll_once(duration::millis(1));
    }
    return pred();
  };

  constexpr int kWrites = 4;
  int committed = 0, failed = 0;
  for (int i = 0; i < kWrites; ++i) {
    Bytes value(static_cast<std::size_t>(200 + i * 700), static_cast<std::uint8_t>(i));
    client.write("udp-" + std::to_string(i), value,
                 [&](Status s) { (s.is_ok() ? committed : failed)++; });
  }
  ASSERT_TRUE(pump_until([&] { return committed + failed == kWrites; },
                         duration::seconds(20)));
  ASSERT_EQ(failed, 0);

  Server& srv1 = *r1.service<Server>("replfs");
  Server& srv2 = *r2.service<Server>("replfs");
  EXPECT_EQ(srv1.store().size(), static_cast<std::size_t>(kWrites));
  EXPECT_EQ(srv1.digest(), srv2.digest());
  EXPECT_EQ(srv1.stats().commits_applied, static_cast<std::uint64_t>(kWrites));

  // Read the replicated state back through the protocol, per replica.
  int verified = 0;
  for (const NodeId server : servers) {
    client.read(server, "udp-3", [&](bool found, const Bytes& value) {
      verified += (found && value.size() == 2300u) ? 1 : 0;
    });
  }
  ASSERT_TRUE(pump_until([&] { return verified == 2; }, duration::seconds(10)));
}

}  // namespace
}  // namespace ndsm::apps::replfs
