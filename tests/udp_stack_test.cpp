// net::UdpStack in-process tests: several stacks in one process exchange
// real UDP datagrams over loopback, driven by interleaved single-threaded
// polling. The full-middleware test at the bottom runs Runtime + flooding
// router + reliable transport + centralized discovery over the real
// sockets — the same code paths the sim tests drive, on the other
// backend. (The multi-process variant lives in udp_fleet_test.cpp.)

#include "net/udp_stack.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <csignal>
#include <ctime>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "discovery/centralized.hpp"
#include "discovery/directory_server.hpp"
#include "net/udp_wire.hpp"
#include "node/runtime.hpp"
#include "transport/ports.hpp"

namespace ndsm {
namespace {

// Each fixture instantiation claims a fresh port range; pid-salted so
// parallel ctest invocations on one host do not collide.
std::uint16_t next_port_base() {
  static std::uint16_t counter = 0;
  counter = static_cast<std::uint16_t>(counter + 1);
  return static_cast<std::uint16_t>(21000 + (getpid() % 1500) * 24 + counter * 8);
}

net::UdpStackConfig fleet_config(std::uint16_t base, std::vector<NodeId> peers) {
  net::UdpStackConfig cfg;
  cfg.port_base = base;
  cfg.peers = std::move(peers);
  return cfg;
}

// Round-robin poll every stack until `pred` holds or `timeout` elapses.
bool pump(const std::vector<net::UdpStack*>& stacks, const std::function<bool()>& pred,
          Time timeout = duration::seconds(5)) {
  const Time until = stacks[0]->now() + timeout;
  while (!pred()) {
    if (stacks[0]->now() >= until) return false;
    for (net::UdpStack* s : stacks) s->poll_once(duration::millis(2));
  }
  return true;
}

TEST(UdpStackTest, UnicastFrameDelivery) {
  const std::uint16_t base = next_port_base();
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}};
  net::UdpStack a{ids[0], fleet_config(base, ids)};
  net::UdpStack b{ids[1], fleet_config(base, ids)};

  std::vector<net::LinkFrame> got;
  b.set_frame_handler(net::Proto::kApp,
                      [&](const net::LinkFrame& f) { got.push_back(f); });
  ASSERT_TRUE(a.send_frame(ids[1], net::Proto::kApp, to_bytes("hello")).is_ok());

  ASSERT_TRUE(pump({&a, &b}, [&] { return !got.empty(); }));
  EXPECT_EQ(got[0].src, ids[0]);
  EXPECT_EQ(got[0].dst, ids[1]);
  EXPECT_EQ(got[0].proto, net::Proto::kApp);
  EXPECT_EQ(to_string(got[0].payload()), "hello");
  EXPECT_GE(a.stats().datagrams_sent, 1u);
  EXPECT_GE(b.stats().datagrams_received, 1u);
}

TEST(UdpStackTest, BroadcastReachesPeersButNotSender) {
  const std::uint16_t base = next_port_base();
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}, NodeId{3}};
  net::UdpStack a{ids[0], fleet_config(base, ids)};
  net::UdpStack b{ids[1], fleet_config(base, ids)};
  net::UdpStack c{ids[2], fleet_config(base, ids)};

  int a_got = 0, b_got = 0, c_got = 0;
  a.set_frame_handler(net::Proto::kRouting, [&](const net::LinkFrame&) { a_got++; });
  b.set_frame_handler(net::Proto::kRouting, [&](const net::LinkFrame&) { b_got++; });
  c.set_frame_handler(net::Proto::kRouting, [&](const net::LinkFrame&) { c_got++; });

  ASSERT_TRUE(a.broadcast_frame(net::Proto::kRouting, to_bytes("beacon")).is_ok());
  ASSERT_TRUE(pump({&a, &b, &c}, [&] { return b_got >= 1 && c_got >= 1; }));
  // Drain a little longer: the sender's own multicast echo must be filtered.
  a.run_for(duration::millis(30));
  EXPECT_EQ(a_got, 0);
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
}

TEST(UdpStackTest, BroadcastFallsBackToUnicastFanout) {
  const std::uint16_t base = next_port_base();
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}, NodeId{3}};
  auto cfg = [&](NodeId) {
    net::UdpStackConfig c = fleet_config(base, ids);
    c.multicast_group = "not-a-multicast-address";  // force the join to fail
    return c;
  };
  net::UdpStack a{ids[0], cfg(ids[0])};
  net::UdpStack b{ids[1], cfg(ids[1])};
  net::UdpStack c{ids[2], cfg(ids[2])};
  EXPECT_FALSE(a.using_multicast());

  int b_got = 0, c_got = 0;
  b.set_frame_handler(net::Proto::kRouting, [&](const net::LinkFrame&) { b_got++; });
  c.set_frame_handler(net::Proto::kRouting, [&](const net::LinkFrame&) { c_got++; });
  ASSERT_TRUE(a.broadcast_frame(net::Proto::kRouting, to_bytes("beacon")).is_ok());
  ASSERT_TRUE(pump({&a, &b, &c}, [&] { return b_got == 1 && c_got == 1; }));
}

// Satellite regression (DESIGN §15): datagrams that are not NDSM wire —
// empty, truncated header, wrong magic, wrong version, pure noise — are
// counted into bad_datagrams and never reach a frame handler, and the
// stack keeps serving well-formed traffic afterwards.
TEST(UdpStackTest, HostileDatagramsCountedAndDropped) {
  const std::uint16_t base = next_port_base();
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}};
  net::UdpStack a{ids[0], fleet_config(base, ids)};
  net::UdpStack b{ids[1], fleet_config(base, ids)};

  int got = 0;
  b.set_frame_handler(net::Proto::kApp, [&](const net::LinkFrame&) { got++; });

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(base + ids[1].value()));
  const auto blast = [&](const Bytes& wire) {
    ASSERT_EQ(::sendto(fd, wire.data(), wire.size(), 0,
                       reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
              static_cast<ssize_t>(wire.size()));
  };

  blast(Bytes{});                        // zero-length datagram
  blast(Bytes{'N', 'D', 'S'});           // truncated mid-magic
  Bytes bad_magic =
      net::encode_wire_datagram({net::Proto::kApp, ids[0], ids[1]}, to_bytes("x"));
  bad_magic[0] ^= 0xff;
  blast(bad_magic);                      // wrong magic
  Bytes bad_version =
      net::encode_wire_datagram({net::Proto::kApp, ids[0], ids[1]}, to_bytes("x"));
  bad_version[4] = 99;
  blast(bad_version);                    // unknown wire version
  blast(Bytes(64, 0xa5));                // noise long enough to parse

  // A well-formed frame sent after the garbage still gets through.
  ASSERT_TRUE(a.send_frame(ids[1], net::Proto::kApp, to_bytes("alive")).is_ok());
  ASSERT_TRUE(pump({&a, &b},
                   [&] { return got == 1 && b.stats().bad_datagrams == 5; }));
  EXPECT_EQ(b.stats().bad_datagrams, 5u);
  EXPECT_EQ(got, 1);
  ::close(fd);
}

TEST(UdpStackTest, HandlerDemuxAndClear) {
  const std::uint16_t base = next_port_base();
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}};
  net::UdpStack a{ids[0], fleet_config(base, ids)};
  net::UdpStack b{ids[1], fleet_config(base, ids)};

  int app = 0, routing = 0;
  b.set_frame_handler(net::Proto::kApp, [&](const net::LinkFrame&) { app++; });
  b.set_frame_handler(net::Proto::kRouting, [&](const net::LinkFrame&) { routing++; });
  ASSERT_TRUE(a.send_frame(ids[1], net::Proto::kApp, to_bytes("x")).is_ok());
  ASSERT_TRUE(a.send_frame(ids[1], net::Proto::kRouting, to_bytes("y")).is_ok());
  ASSERT_TRUE(pump({&a, &b}, [&] { return app == 1 && routing == 1; }));

  // A cleared protocol's frames are counted dropped, not delivered.
  b.clear_frame_handler(net::Proto::kApp);
  const std::uint64_t dropped = b.stats().frames_dropped;
  ASSERT_TRUE(a.send_frame(ids[1], net::Proto::kApp, to_bytes("z")).is_ok());
  ASSERT_TRUE(pump({&a, &b}, [&] { return b.stats().frames_dropped > dropped; }));
  EXPECT_EQ(app, 1);
}

TEST(UdpStackTest, TimersFireInDeadlineOrderAndCancelWorks) {
  const std::uint16_t base = next_port_base();
  net::UdpStack a{NodeId{1}, fleet_config(base, {NodeId{1}})};

  std::vector<int> order;
  a.schedule_after(duration::millis(30), [&] { order.push_back(3); });
  a.schedule_after(duration::millis(10), [&] { order.push_back(1); });
  const EventId victim = a.schedule_after(duration::millis(20), [&] { order.push_back(99); });
  a.schedule_after(duration::millis(20), [&] { order.push_back(2); });
  a.cancel(victim);
  EXPECT_EQ(a.pending_timers(), 3u);

  ASSERT_TRUE(pump({&a}, [&] { return order.size() == 3; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(a.pending_timers(), 0u);
}

TEST(UdpStackTest, PeriodicTimerRunsOverRealClock) {
  const std::uint16_t base = next_port_base();
  net::UdpStack a{NodeId{1}, fleet_config(base, {NodeId{1}})};

  int fires = 0;
  net::PeriodicTimer timer{a, duration::millis(10), [&] { fires++; }};
  timer.start();
  ASSERT_TRUE(pump({&a}, [&] { return fires >= 3; }, duration::seconds(2)));
  timer.stop();
  const int at_stop = fires;
  a.run_for(duration::millis(40));
  EXPECT_EQ(fires, at_stop);
}

TEST(UdpStackTest, LinkDownDropsTrafficAndLinkUpRebinds) {
  const std::uint16_t base = next_port_base();
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}};
  net::UdpStack a{ids[0], fleet_config(base, ids)};
  net::UdpStack b{ids[1], fleet_config(base, ids)};

  int got = 0;
  b.set_frame_handler(net::Proto::kApp, [&](const net::LinkFrame&) { got++; });

  b.set_link_down();
  EXPECT_FALSE(b.online());
  EXPECT_EQ(b.send_frame(ids[0], net::Proto::kApp, to_bytes("x")).code(),
            ErrorCode::kResourceExhausted);
  // Traffic sent while the destination is down is simply lost (transport
  // retries recover; here we just verify nothing is queued by the kernel
  // for the reopened socket).
  ASSERT_TRUE(a.send_frame(ids[1], net::Proto::kApp, to_bytes("lost")).is_ok());
  a.run_for(duration::millis(20));

  ASSERT_TRUE(b.set_link_up());
  EXPECT_TRUE(b.online());
  b.run_for(duration::millis(20));
  EXPECT_EQ(got, 0);
  ASSERT_TRUE(a.send_frame(ids[1], net::Proto::kApp, to_bytes("back")).is_ok());
  ASSERT_TRUE(pump({&a, &b}, [&] { return got == 1; }));
}

TEST(UdpStackTest, IncarnationEpochsAreDistinctAndIncreasing) {
  const std::uint16_t base = next_port_base();
  std::uint64_t first = 0;
  {
    net::UdpStack a{NodeId{1}, fleet_config(base, {NodeId{1}})};
    first = a.incarnation_epoch();
    EXPECT_GT(first, 0u);
  }
  net::UdpStack again{NodeId{1}, fleet_config(base, {NodeId{1}})};
  EXPECT_GT(again.incarnation_epoch(), first);

  net::UdpStack other{NodeId{2}, fleet_config(base, {NodeId{2}})};
  EXPECT_NE(other.incarnation_epoch(), again.incarnation_epoch());
}

TEST(UdpStackTest, ForkedRngStreamsDiffer) {
  const std::uint16_t base = next_port_base();
  net::UdpStack a{NodeId{1}, fleet_config(base, {NodeId{1}})};
  Rng r1 = a.fork_rng(1);
  Rng r2 = a.fork_rng(2);
  EXPECT_NE(r1.next_u64(), r2.next_u64());
}

// Satellite bugfix pin: poll_once used to pass its wait to ::poll as int
// milliseconds, so a timer deadline under 1 ms away truncated to a 0 ms
// timeout and the run loop hot-spun at 100% CPU until the deadline
// passed. With exact ppoll timespecs, a 5 ms periodic timer costs a
// handful of polls per firing, not thousands.
TEST(UdpStackTest, SubMillisecondTimerWaitsDoNotBusySpin) {
  const std::uint16_t base = next_port_base();
  net::UdpStack a{NodeId{1}, fleet_config(base, {NodeId{1}})};

  int fires = 0;
  net::PeriodicTimer timer{a, duration::millis(5), [&] { fires++; }};
  timer.start();
  a.run_for(duration::millis(200));
  timer.stop();

  EXPECT_GE(fires, 20);  // nominal 40; generous for loaded CI hosts
  // ~1 poll per firing plus kernel-rounding wakeups. Pre-fix this was
  // tens of thousands (one spin per scheduler quantum).
  EXPECT_LE(a.stats().polls, 500u);
}

// Satellite bugfix pin: every syscall in the stack (ppoll, sendto,
// recvfrom) must retry on EINTR. A no-op SIGALRM handler installed
// without SA_RESTART makes the kernel interrupt them constantly; traffic
// must still flow and the retries must be visible in the stats.
TEST(UdpStackTest, SyscallsRetryAfterSignalInterruption) {
  const std::uint16_t base = next_port_base();
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}};
  net::UdpStack a{ids[0], fleet_config(base, ids)};
  net::UdpStack b{ids[1], fleet_config(base, ids)};

  struct sigaction sa {};
  struct sigaction old_sa {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old_sa), 0);
  itimerval interval{};
  itimerval old_interval{};
  interval.it_interval.tv_usec = 2000;  // fire every 2 ms
  interval.it_value.tv_usec = 2000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &interval, &old_interval), 0);

  int got = 0;
  b.set_frame_handler(net::Proto::kApp, [&](const net::LinkFrame&) { got++; });
  bool sends_ok = true;
  for (int i = 0; i < 10; ++i) {
    sends_ok = sends_ok &&
               a.send_frame(ids[1], net::Proto::kApp,
                            to_bytes("sig-" + std::to_string(i)))
                   .is_ok();
  }
  const bool delivered = pump({&a, &b}, [&] { return got == 10; });
  // A long idle wait is guaranteed to eat several SIGALRMs mid-ppoll.
  a.run_for(duration::millis(50));

  itimerval stop{};
  setitimer(ITIMER_REAL, &stop, nullptr);
  sigaction(SIGALRM, &old_sa, nullptr);

  EXPECT_TRUE(sends_ok);
  ASSERT_TRUE(delivered);
  EXPECT_EQ(got, 10);
  EXPECT_GE(a.stats().eintr_retries + b.stats().eintr_retries, 1u);
}

// Satellite coverage: run_until consults the predicate before the
// timeout, so a zero budget still reports an already-true condition, and
// a false one returns immediately instead of hanging.
TEST(UdpStackTest, RunUntilChecksPredicateBeforeTimeout) {
  const std::uint16_t base = next_port_base();
  net::UdpStack a{NodeId{1}, fleet_config(base, {NodeId{1}})};
  EXPECT_TRUE(a.run_until([] { return true; }, 0));
  EXPECT_FALSE(a.run_until([] { return false; }, 0));

  // Timeout placed exactly on a timer deadline: the deadline-side poll
  // wakes at-or-after it, the timer fires, and the predicate verdict wins
  // over the simultaneous timeout.
  bool fired = false;
  a.schedule_after(duration::millis(30), [&] { fired = true; });
  EXPECT_TRUE(a.run_until([&] { return fired; }, duration::millis(30)));
}

TEST(UdpStackTest, RunForZeroDurationReturnsWithoutPolling) {
  const std::uint16_t base = next_port_base();
  net::UdpStack a{NodeId{1}, fleet_config(base, {NodeId{1}})};
  const std::uint64_t polls_before = a.stats().polls;
  a.run_for(0);
  EXPECT_EQ(a.stats().polls, polls_before);
}

// Satellite coverage: several deadlines already in the past when the loop
// next runs — one poll_once drains them all, in deadline order.
TEST(UdpStackTest, BackloggedDeadlinesDrainInOrderInOneWakeup) {
  const std::uint16_t base = next_port_base();
  net::UdpStack a{NodeId{1}, fleet_config(base, {NodeId{1}})};

  std::vector<int> order;
  a.schedule_after(duration::millis(3), [&] { order.push_back(3); });
  a.schedule_after(duration::millis(1), [&] { order.push_back(1); });
  a.schedule_after(duration::millis(2), [&] { order.push_back(2); });
  timespec ts{0, 10 * 1000 * 1000};  // let all three deadlines lapse
  nanosleep(&ts, nullptr);
  a.poll_once(duration::millis(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(a.pending_timers(), 0u);
}

// The acceptance-criteria path, in-process: three Runtimes on three
// UdpStacks run flooding + reliable transport + centralized discovery
// over real loopback sockets. Node 1 hosts the directory, node 2
// registers a service, node 3 discovers it and completes a reliable
// exactly-once exchange with node 2.
TEST(UdpStackTest, RuntimeFleetDiscoveryAndExactlyOnceExchange) {
  const std::uint16_t base = next_port_base();
  const std::vector<NodeId> ids{NodeId{1}, NodeId{2}, NodeId{3}};
  net::UdpStack s1{ids[0], fleet_config(base, ids)};
  net::UdpStack s2{ids[1], fleet_config(base, ids)};
  net::UdpStack s3{ids[2], fleet_config(base, ids)};
  const std::vector<net::UdpStack*> stacks{&s1, &s2, &s3};

  node::StackConfig cfg;
  cfg.router = node::RouterPolicy::kFlooding;
  node::Runtime dir{s1, cfg};
  node::Runtime provider{s2, cfg};
  node::Runtime consumer{s3, cfg};

  dir.emplace_service<discovery::DirectoryServer>("directory");
  auto& disc_p = provider.emplace_service<discovery::CentralizedDiscovery>(
      "discovery", std::vector<NodeId>{ids[0]});
  auto& disc_c = consumer.emplace_service<discovery::CentralizedDiscovery>(
      "discovery", std::vector<NodeId>{ids[0]});

  qos::SupplierQos printer;
  printer.service_type = "printer";
  disc_p.register_service(printer, duration::seconds(60));

  // Provider-side app endpoint: counts per-sequence receipts so a
  // transport-level duplicate would be visible as a count > 1.
  std::map<std::string, int> receipts;
  provider.transport().set_receiver(
      transport::ports::kApp,
      [&](NodeId, const Bytes& payload) { receipts[to_string(payload)]++; });

  // Discover the printer (query retried until registration propagates).
  std::vector<discovery::ServiceRecord> found;
  bool query_done = false;
  const bool discovered = pump(stacks, [&] {
    if (!found.empty()) return true;
    if (!query_done) {
      query_done = true;
      qos::ConsumerQos want;
      want.service_type = "printer";
      disc_c.query(want, [&](std::vector<discovery::ServiceRecord> records) {
        found = std::move(records);
        query_done = false;  // retry on an empty result
      }, 8, duration::millis(500));
    }
    return false;
  }, duration::seconds(20));
  ASSERT_TRUE(discovered);
  EXPECT_EQ(found[0].provider, ids[1]);

  // Reliable exactly-once exchange: every send acked, every payload
  // delivered exactly once.
  constexpr int kMessages = 8;
  int acked = 0;
  for (int i = 0; i < kMessages; ++i) {
    consumer.transport().send(ids[1], transport::ports::kApp,
                              to_bytes("job-" + std::to_string(i)),
                              [&](Status s) { ASSERT_TRUE(s.is_ok()); acked++; });
  }
  ASSERT_TRUE(pump(stacks, [&] {
    return acked == kMessages && receipts.size() == static_cast<std::size_t>(kMessages);
  }, duration::seconds(20)));
  for (const auto& [payload, count] : receipts) {
    EXPECT_EQ(count, 1) << payload << " delivered more than once";
  }
  EXPECT_GE(provider.transport().stats().messages_delivered,
            static_cast<std::uint64_t>(kMessages));
}

}  // namespace
}  // namespace ndsm
