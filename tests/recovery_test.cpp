#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "recovery/store.hpp"
#include "recovery/wal.hpp"

namespace ndsm::recovery {
namespace {

using serialize::Value;

struct StoreTest : ::testing::Test {
  StableStorage log;
  StableStorage checkpoints;
  RecoverableStore store{log, checkpoints};
};

TEST_F(StoreTest, PutGetErase) {
  store.put("a", Value{1});
  store.put("b", Value{"two"});
  EXPECT_EQ(store.get("a"), Value{1});
  EXPECT_EQ(store.get("b"), Value{"two"});
  store.erase("a");
  EXPECT_FALSE(store.get("a").has_value());
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(StoreTest, CrashLosesVolatileState) {
  store.put("a", Value{1});
  store.crash();
  EXPECT_FALSE(store.get("a").has_value());
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(StoreTest, RecoveryReplaysCommittedOps) {
  store.put("a", Value{1});
  store.put("b", Value{2});
  store.erase("a");
  store.crash();
  const auto report = store.recover();
  EXPECT_FALSE(store.get("a").has_value());
  EXPECT_EQ(store.get("b"), Value{2});
  EXPECT_EQ(report.ops_applied, 3u);
  EXPECT_FALSE(report.from_checkpoint);
}

TEST_F(StoreTest, UncommittedTransactionDiscardedOnRecovery) {
  store.put("stable", Value{0});
  const auto tx = store.begin_tx();
  store.put("dirty", Value{1}, tx);
  // Crash before commit.
  store.crash();
  const auto report = store.recover();
  EXPECT_EQ(store.get("stable"), Value{0});
  EXPECT_FALSE(store.get("dirty").has_value());
  EXPECT_EQ(report.uncommitted_discarded, 1u);
}

TEST_F(StoreTest, CommittedTransactionSurvives) {
  const auto tx = store.begin_tx();
  store.put("x", Value{42}, tx);
  store.put("y", Value{43}, tx);
  store.commit(tx);
  store.crash();
  store.recover();
  EXPECT_EQ(store.get("x"), Value{42});
  EXPECT_EQ(store.get("y"), Value{43});
}

TEST_F(StoreTest, TransactionIsolationBeforeCommit) {
  const auto tx = store.begin_tx();
  store.put("x", Value{1}, tx);
  // Buffered writes are invisible until commit.
  EXPECT_FALSE(store.get("x").has_value());
  store.commit(tx);
  EXPECT_EQ(store.get("x"), Value{1});
}

TEST_F(StoreTest, AbortDropsWrites) {
  store.put("keep", Value{1});
  const auto tx = store.begin_tx();
  store.put("drop", Value{2}, tx);
  store.abort(tx);
  EXPECT_FALSE(store.get("drop").has_value());
  // Also after crash + recovery.
  store.crash();
  store.recover();
  EXPECT_FALSE(store.get("drop").has_value());
  EXPECT_EQ(store.get("keep"), Value{1});
}

TEST_F(StoreTest, CheckpointTruncatesLog) {
  for (int i = 0; i < 50; ++i) store.put("k" + std::to_string(i), Value{i});
  EXPECT_EQ(store.log_records(), 50u);
  store.checkpoint();
  EXPECT_LE(store.log_records(), 1u);  // just the checkpoint marker
  store.crash();
  const auto report = store.recover();
  EXPECT_TRUE(report.from_checkpoint);
  EXPECT_EQ(store.size(), 50u);
  EXPECT_EQ(store.get("k17"), Value{17});
}

TEST_F(StoreTest, RecoveryCombinesCheckpointAndLogTail) {
  store.put("before", Value{1});
  store.checkpoint();
  store.put("after", Value{2});
  store.crash();
  const auto report = store.recover();
  EXPECT_TRUE(report.from_checkpoint);
  EXPECT_EQ(store.get("before"), Value{1});
  EXPECT_EQ(store.get("after"), Value{2});
  EXPECT_EQ(report.ops_applied, 1u);  // only the tail op replayed
}

TEST_F(StoreTest, OpenTransactionSurvivesCheckpoint) {
  const auto tx = store.begin_tx();
  store.put("pending", Value{9}, tx);
  store.checkpoint();  // open tx must be re-logged
  store.commit(tx);
  store.crash();
  store.recover();
  EXPECT_EQ(store.get("pending"), Value{9});
}

TEST_F(StoreTest, TornLogTailIgnored) {
  store.put("good", Value{1});
  store.put("torn", Value{2});
  log.corrupt(log.size() - 1);  // simulate a torn final write
  store.crash();
  const auto report = store.recover();
  EXPECT_EQ(store.get("good"), Value{1});
  EXPECT_FALSE(store.get("torn").has_value());
  EXPECT_EQ(report.log_records_replayed, 1u);
}

// Regression: a corrupt record in the *middle* of the log used to be
// indistinguishable from a benign torn tail — replay() silently stopped and
// the still-valid records after the tear vanished without a trace. Replay
// still stops at the tear (replaying past it is unsound), but now accounts
// for every dropped record and flags the decodable ones as mid-log
// corruption.
TEST(WalReplay, CorruptMiddleStopsAtTearAndCountsDroppedValidRecords) {
  StableStorage storage;
  WriteAheadLog wal(storage);
  for (int i = 0; i < 5; ++i) {
    wal.append(LogKind::kPut, 0, "k" + std::to_string(i), Value{i});
  }
  storage.corrupt(2);  // records 0,1 intact; 2 torn; 3,4 valid but stranded
  const auto records = wal.replay();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].key, "k1");
  const auto& report = wal.last_replay();
  EXPECT_EQ(report.records_replayed, 2u);
  EXPECT_EQ(report.records_dropped, 3u);
  EXPECT_EQ(report.records_dropped_valid, 2u);
  EXPECT_GT(report.bytes_dropped, 0u);
  EXPECT_TRUE(report.torn());
  EXPECT_TRUE(report.mid_log_corruption());
}

TEST(WalReplay, TornFinalRecordIsNotMidLogCorruption) {
  StableStorage storage;
  WriteAheadLog wal(storage);
  for (int i = 0; i < 3; ++i) {
    wal.append(LogKind::kPut, 0, "k" + std::to_string(i), Value{i});
  }
  storage.corrupt(storage.size() - 1);  // crash mid-append of the last record
  const auto records = wal.replay();
  EXPECT_EQ(records.size(), 2u);
  const auto& report = wal.last_replay();
  EXPECT_EQ(report.records_dropped, 1u);
  EXPECT_EQ(report.records_dropped_valid, 0u);
  EXPECT_TRUE(report.torn());
  EXPECT_FALSE(report.mid_log_corruption());
}

TEST(WalReplay, CleanLogReportsNothingDropped) {
  StableStorage storage;
  WriteAheadLog wal(storage);
  wal.append(LogKind::kPut, 0, "k", Value{1});
  (void)wal.replay();
  const auto& report = wal.last_replay();
  EXPECT_EQ(report.records_replayed, 1u);
  EXPECT_FALSE(report.torn());
  EXPECT_FALSE(report.mid_log_corruption());
}

// Satellite regression (DESIGN §15): a storage image an attacker wrote
// wholesale — random noise, a hostile length field, an empty record — must
// replay without crashing, and the accounting invariant
// replayed + dropped == storage.size() must hold on every shape.
TEST(WalReplay, HostileStorageImageFailsClosed) {
  Rng rng{0xbadbeef};
  for (int trial = 0; trial < 64; ++trial) {
    StableStorage storage;
    const auto n = rng.uniform_int(1, 6);
    for (int i = 0; i < n; ++i) {
      Bytes rec;
      const auto len = rng.uniform_int(0, 64);
      for (int b = 0; b < len; ++b) {
        rec.push_back(static_cast<std::uint8_t>(rng.next_u32()));
      }
      (void)storage.append(std::move(rec));
    }
    WriteAheadLog wal(storage);
    const auto records = wal.replay();
    const auto& report = wal.last_replay();
    EXPECT_EQ(records.size(), report.records_replayed) << trial;
    EXPECT_EQ(report.records_replayed + report.records_dropped, storage.size())
        << trial;
  }
}

TEST(WalReplay, HugeDeclaredKeyLengthRejected) {
  StableStorage storage;
  WriteAheadLog wal(storage);
  wal.append(LogKind::kPut, 1, "real", Value{1});
  // Hand-craft a record whose key length claims 2^60 bytes, with a VALID
  // integrity digest so the decode reaches the length clamp — the digest
  // proves integrity, not honesty, and must not be the only defence.
  serialize::Writer w;
  w.varint(2);  // lsn
  w.u8(static_cast<std::uint8_t>(LogKind::kPut));
  w.varint(2);           // txn
  w.varint(1ULL << 60);  // hostile key length — must not allocate
  w.u64(fnv1a(w.data()));
  (void)storage.append(std::move(w).take());
  const auto records = wal.replay();
  const auto& report = wal.last_replay();
  EXPECT_EQ(records.size(), 1u);  // the real record replays, the bomb drops
  EXPECT_EQ(report.records_replayed + report.records_dropped, storage.size());
  EXPECT_EQ(report.records_dropped, 1u);
}

TEST_F(StoreTest, CorruptCheckpointFallsBackToOlder) {
  store.put("a", Value{1});
  store.checkpoint();
  store.put("b", Value{2});
  store.checkpoint();
  checkpoints.corrupt(checkpoints.size() - 1);  // newest checkpoint damaged
  store.crash();
  const auto report = store.recover();
  EXPECT_TRUE(report.from_checkpoint);
  EXPECT_EQ(store.get("a"), Value{1});
  // "b" was only in the newest (corrupt) checkpoint and its log segment was
  // truncated — documented data-loss window of single-copy checkpoints.
  EXPECT_FALSE(store.get("b").has_value());
}

TEST_F(StoreTest, OverwritesKeepLatestValue) {
  for (int i = 0; i < 10; ++i) store.put("k", Value{i});
  store.crash();
  store.recover();
  EXPECT_EQ(store.get("k"), Value{9});
}

TEST_F(StoreTest, RecoveryIsIdempotent) {
  store.put("a", Value{1});
  store.crash();
  store.recover();
  const auto again = store.recover();
  EXPECT_EQ(store.get("a"), Value{1});
  EXPECT_EQ(again.ops_applied, 1u);
}

TEST_F(StoreTest, LsnMonotoneAcrossRecovery) {
  store.put("a", Value{1});
  store.crash();
  store.recover();
  store.put("b", Value{2});  // must not reuse LSNs
  store.crash();
  store.recover();
  EXPECT_EQ(store.get("a"), Value{1});
  EXPECT_EQ(store.get("b"), Value{2});
}

TEST_F(StoreTest, LoggingCostsAreModelled) {
  const Time before = log.stats().time_spent;
  store.put("a", Value{std::string(1000, 'x')});
  EXPECT_GT(log.stats().time_spent, before);
  EXPECT_GT(log.stats().bytes_written, 1000u);
}

TEST_F(StoreTest, RecoveryTimeGrowsWithLogLength) {
  for (int i = 0; i < 10; ++i) store.put("k" + std::to_string(i), Value{i});
  store.crash();
  const auto short_log = store.recover();

  for (int i = 0; i < 500; ++i) store.put("k" + std::to_string(i), Value{i});
  store.crash();
  const auto long_log = store.recover();
  EXPECT_GT(long_log.modelled_time, short_log.modelled_time * 5);
}

TEST(LogRecord, CodecRejectsTampering) {
  LogRecord rec;
  rec.lsn = 5;
  rec.kind = LogKind::kPut;
  rec.tx = 1;
  rec.key = "k";
  rec.value = Value{7};
  Bytes data = rec.encode();
  ASSERT_TRUE(LogRecord::decode(data).has_value());
  data[2] ^= 0x01;
  EXPECT_FALSE(LogRecord::decode(data).has_value());  // digest mismatch
  EXPECT_FALSE(LogRecord::decode(Bytes{1, 2, 3}).has_value());
}

}  // namespace
}  // namespace ndsm::recovery
